"""Fault-injection harness and the prefetch circuit breaker."""

import pytest

from repro.robustness import (
    INDEX_QUERY,
    PREFETCH_COMPUTE,
    SIMILARITY_EVAL,
    CircuitBreaker,
    CircuitOpen,
    FaultInjected,
    FaultInjector,
)
from repro.robustness.faults import STANDARD_POINTS


class TestFaultInjector:
    def test_unarmed_point_is_a_noop(self):
        injector = FaultInjector()
        injector.check(INDEX_QUERY)  # nothing armed, nothing raised
        assert injector.fires(INDEX_QUERY) == 0

    def test_armed_point_fires(self):
        injector = FaultInjector().arm(INDEX_QUERY)
        with pytest.raises(FaultInjected) as err:
            injector.check(INDEX_QUERY)
        assert err.value.point == INDEX_QUERY
        assert injector.fires(INDEX_QUERY) == 1
        # Other points stay clean.
        injector.check(SIMILARITY_EVAL)

    def test_probability_is_seeded_and_partial(self):
        def fire_count(seed):
            injector = FaultInjector(seed=seed).arm(
                PREFETCH_COMPUTE, probability=0.5
            )
            for _ in range(200):
                try:
                    injector.check(PREFETCH_COMPUTE)
                except FaultInjected:
                    pass
            return injector.fires(PREFETCH_COMPUTE)

        count = fire_count(7)
        assert 0 < count < 200  # genuinely probabilistic
        assert count == fire_count(7)  # and reproducible

    def test_max_fires(self):
        injector = FaultInjector().arm(INDEX_QUERY, max_fires=2)
        for _ in range(2):
            with pytest.raises(FaultInjected):
                injector.check(INDEX_QUERY)
        injector.check(INDEX_QUERY)  # budget spent: passes through
        assert injector.fires(INDEX_QUERY) == 2
        assert injector.attempts[INDEX_QUERY] == 3

    def test_custom_error(self):
        injector = FaultInjector().arm(SIMILARITY_EVAL, error=KeyError)
        with pytest.raises(KeyError):
            injector.check(SIMILARITY_EVAL)

    def test_disarm(self):
        injector = FaultInjector().arm(INDEX_QUERY)
        injector.disarm(INDEX_QUERY)
        injector.check(INDEX_QUERY)
        injector.arm(INDEX_QUERY).arm(PREFETCH_COMPUTE)
        injector.disarm_all()
        for point in STANDARD_POINTS:
            injector.check(point)

    def test_validation(self):
        with pytest.raises(ValueError):
            FaultInjector().arm(INDEX_QUERY, probability=1.5)
        with pytest.raises(ValueError):
            FaultInjector().arm(INDEX_QUERY, latency_s=-1.0)
        with pytest.raises(ValueError):
            FaultInjector().arm(INDEX_QUERY, max_fires=-1)


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


class TestCircuitBreaker:
    def test_trips_after_threshold(self):
        breaker = CircuitBreaker(failure_threshold=3, clock=FakeClock())
        for _ in range(2):
            breaker.record_failure()
            assert breaker.state == "closed"
        breaker.record_failure()
        assert breaker.state == "open"
        assert not breaker.allows()

    def test_success_resets_streak(self):
        breaker = CircuitBreaker(failure_threshold=2, clock=FakeClock())
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == "closed"

    def test_open_rejects_calls(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, clock=clock)
        breaker.record_failure()
        with pytest.raises(CircuitOpen):
            breaker.call(lambda: "never runs")
        assert breaker.rejections == 1

    def test_half_open_probe_and_close(self):
        clock = FakeClock()
        breaker = CircuitBreaker(
            failure_threshold=1, reset_after_s=10.0, clock=clock
        )
        breaker.record_failure()
        assert breaker.state == "open"
        clock.now = 11.0  # cool-down elapsed: one probe allowed
        assert breaker.state == "half_open"
        assert breaker.call(lambda: 42) == 42
        assert breaker.state == "closed"

    def test_half_open_failure_reopens(self):
        clock = FakeClock()
        breaker = CircuitBreaker(
            failure_threshold=3, reset_after_s=10.0, clock=clock
        )
        for _ in range(3):
            breaker.record_failure()
        clock.now = 11.0
        assert breaker.state == "half_open"
        with pytest.raises(RuntimeError):
            breaker.call(self._boom)
        # A single half-open failure re-opens regardless of threshold.
        assert breaker.state == "open"

    def test_call_propagates_and_counts(self):
        breaker = CircuitBreaker(failure_threshold=5, clock=FakeClock())
        with pytest.raises(RuntimeError):
            breaker.call(self._boom)
        assert breaker.failures == 1
        assert breaker.call(lambda: "ok") == "ok"
        assert breaker.successes == 1

    @staticmethod
    def _boom():
        raise RuntimeError("downstream failure")
