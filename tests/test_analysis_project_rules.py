"""Per-rule fixtures for the project-mode rules (RL007-RL012).

Same contract as ``test_analysis_rules``: every rule gets a true
positive, a true negative, and an honored (justified) suppression.
The RL008 positive is the PR 4 breaker race in miniature — a
``threading.Lock`` guarding state that an ``async`` path holds across
an ``await`` — proving the project pass would have flagged the shape
the runtime rewrite fixed.
"""

from __future__ import annotations

import textwrap

from repro.analysis import check_project_sources


def run_project(sources, select=None):
    return check_project_sources(
        {rel: textwrap.dedent(src) for rel, src in sources.items()},
        select=select,
    )


def codes(findings):
    return [f.rule for f in findings]


SRC = "src/repro/core/_fixture.py"


class TestRL007BlockingInAsync:
    def test_direct_blocking_call_in_async_def(self):
        findings = run_project({SRC: """
            import time

            async def handler():
                time.sleep(0.1)
        """}, select=["RL007"])
        assert codes(findings) == ["RL007"]
        assert "time.sleep" in findings[0].message
        assert findings[0].line == 5

    def test_transitive_reach_reports_the_chain(self):
        findings = run_project({SRC: """
            import time

            async def handler():
                load()

            def load():
                time.sleep(0.1)
        """}, select=["RL007"])
        assert codes(findings) == ["RL007"]
        assert "handler" in findings[0].message  # taint chain shown

    def test_cross_module_pool_dispatch(self):
        """The shape of the service bug this PR fixed: an async
        handler reaching a pool warm-up through two modules."""
        findings = run_project({
            "src/repro/service/_mgr.py": """
                class Manager:
                    def create(self, pool):
                        pool.warm()
            """,
            "src/repro/service/_svc.py": """
                from repro.service._mgr import Manager

                class Service:
                    def __init__(self):
                        self.sessions = Manager()

                    async def handle(self, pool):
                        self.sessions.create(pool)
            """,
        }, select=["RL007"])
        assert codes(findings) == ["RL007"]
        assert findings[0].path == "src/repro/service/_mgr.py"

    def test_to_thread_hop_is_clean(self):
        findings = run_project({SRC: """
            import asyncio
            import time

            async def handler():
                await asyncio.to_thread(load)

            def load():
                time.sleep(0.1)
        """}, select=["RL007"])
        assert findings == []

    def test_awaited_acquire_is_clean(self):
        findings = run_project({SRC: """
            import asyncio

            async def handler(sem):
                await asyncio.wait_for(sem.acquire(), 1.0)
                await sem.acquire()
        """}, select=["RL007"])
        assert findings == []

    def test_asyncio_sleep_is_clean(self):
        findings = run_project({SRC: """
            import asyncio

            async def handler():
                await asyncio.sleep(0.1)
        """}, select=["RL007"])
        assert findings == []

    def test_suppression_honored(self):
        findings = run_project({SRC: """
            import time

            async def handler():
                # startup-only path, loop not yet serving
                time.sleep(0.1)  # repro-lint: disable=RL007 -- startup only
        """}, select=["RL007"])
        assert findings == []


class TestRL008LockAcrossAwait:
    def test_pr4_breaker_race_shape(self):
        findings = run_project({SRC: """
            import threading

            class Breaker:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._failures = 0

                async def guarded_probe(self):
                    with self._lock:
                        await self.probe()

                async def probe(self):
                    pass
        """}, select=["RL008"])
        assert codes(findings) == ["RL008"]
        assert "self._lock" in findings[0].message

    def test_async_with_on_thread_lock(self):
        findings = run_project({SRC: """
            import threading

            async def handler():
                lock = threading.Lock()
                async with lock:
                    pass
        """}, select=["RL008"])
        assert codes(findings) == ["RL008"]

    def test_asyncio_lock_is_clean(self):
        findings = run_project({SRC: """
            import asyncio

            class Guard:
                def __init__(self):
                    self._lock = asyncio.Lock()

                async def run(self):
                    async with self._lock:
                        await asyncio.sleep(0)
        """}, select=["RL008"])
        assert findings == []

    def test_lock_released_before_await_is_clean(self):
        findings = run_project({SRC: """
            import asyncio
            import threading

            class Guard:
                def __init__(self):
                    self._lock = threading.Lock()

                async def run(self):
                    with self._lock:
                        snapshot = 1
                    await asyncio.sleep(snapshot)
        """}, select=["RL008"])
        assert findings == []

    def test_suppression_honored(self):
        findings = run_project({SRC: """
            import threading

            class Guard:
                def __init__(self):
                    self._lock = threading.Lock()

                async def run(self):
                    # repro-lint: disable=RL008 -- await cannot re-enter
                    with self._lock:
                        await self.noop()

                async def noop(self):
                    pass
        """}, select=["RL008"])
        assert findings == []


class TestRL009ResourceLifecycle:
    def test_dropped_executor_flagged(self):
        findings = run_project({SRC: """
            from concurrent.futures import ThreadPoolExecutor

            def burst(jobs):
                pool = ThreadPoolExecutor(4)
                return [pool.submit(job) for job in jobs]
        """}, select=["RL009"])
        assert codes(findings) == ["RL009"]
        assert "'pool'" in findings[0].message

    def test_cross_module_closeable_class(self):
        findings = run_project({
            "src/repro/parallel/_pool.py": """
                class WorkerPool:
                    def close(self):
                        pass
            """,
            "src/repro/core/_user.py": """
                from repro.parallel._pool import WorkerPool

                def sweep():
                    pool = WorkerPool()
                    pool.warm()
            """,
        }, select=["RL009"])
        assert codes(findings) == ["RL009"]
        assert findings[0].path == "src/repro/core/_user.py"

    def test_discharges_are_clean(self):
        findings = run_project({SRC: """
            from concurrent.futures import ThreadPoolExecutor

            def managed(jobs):
                with ThreadPoolExecutor(4) as pool:
                    return [pool.submit(job) for job in jobs]

            def handed_back():
                return ThreadPoolExecutor(4)

            class Owner:
                def __init__(self):
                    self._pool = ThreadPoolExecutor(4)

                def close(self):
                    self._pool.shutdown()

            def explicit():
                pool = ThreadPoolExecutor(4)
                try:
                    pool.submit(print)
                finally:
                    pool.shutdown()
        """}, select=["RL009"])
        assert findings == []

    def test_non_closeable_class_ignored(self):
        findings = run_project({SRC: """
            class Plain:
                pass

            def make():
                thing = Plain()
                thing.x = 1
        """}, select=["RL009"])
        assert findings == []

    def test_suppression_honored(self):
        findings = run_project({SRC: """
            from concurrent.futures import ThreadPoolExecutor

            def leak_on_purpose():
                # repro-lint: disable=RL009 -- process-lifetime pool
                pool = ThreadPoolExecutor(4)
                pool.submit(print)
        """}, select=["RL009"])
        assert findings == []


class TestRL010NameRegistry:
    def test_typo_metric_read_flagged(self):
        findings = run_project({
            "src/repro/core/_writer.py": """
                def record(metrics):
                    metrics.incr("service.admitted")
            """,
            "src/repro/core/_reader.py": """
                def admitted(metrics):
                    return metrics.count("service.admited")
            """,
        }, select=["RL010"])
        assert codes(findings) == ["RL010"]
        assert "service.admited" in findings[0].message
        assert findings[0].path == "src/repro/core/_reader.py"

    def test_declared_and_prefixed_reads_clean(self):
        findings = run_project({SRC: """
            def record(metrics, kind):
                metrics.incr("service.admitted")
                metrics.incr(f"service.sheds.{kind}")

            def read(metrics):
                a = metrics.count("service.admitted")
                b = metrics.count("service.sheds.queue_full")
                return a + b
        """}, select=["RL010"])
        assert findings == []

    def test_unknown_fault_point_flagged(self):
        findings = run_project({
            "src/repro/robustness/_points.py": """
                INDEX_QUERY = "index.query"
            """,
            "src/repro/core/_chaos.py": """
                def chaos(injector):
                    injector.arm("index.qurey")
            """,
        }, select=["RL010"])
        assert codes(findings) == ["RL010"]
        assert "index.qurey" in findings[0].message

    def test_declared_fault_point_clean(self):
        findings = run_project({
            "src/repro/robustness/_points.py": """
                INDEX_QUERY = "index.query"
            """,
            "src/repro/core/_chaos.py": """
                def chaos(injector):
                    injector.arm("index.query")
            """,
        }, select=["RL010"])
        assert findings == []

    def test_suppression_honored(self):
        findings = run_project({SRC: """
            def read(metrics):
                # external dashboard name, declared by the collector
                return metrics.count("host.cpu")  # repro-lint: disable=RL010 -- external name
        """}, select=["RL010"])
        assert findings == []


class TestRL011DeadlinePropagation:
    def test_dropped_deadline_flagged(self):
        findings = run_project({SRC: """
            def select(k, deadline=None):
                return sweep(k)

            def sweep(k, deadline=None):
                return k
        """}, select=["RL011"])
        assert codes(findings) == ["RL011"]
        assert "deadline" in findings[0].message

    def test_forwarded_deadline_clean(self):
        findings = run_project({SRC: """
            def select(k, deadline=None):
                return sweep(k, deadline=deadline)

            def sweep(k, deadline=None):
                return k
        """}, select=["RL011"])
        assert findings == []

    def test_deadline_free_callee_clean(self):
        findings = run_project({SRC: """
            def select(k, deadline=None):
                return double(k)

            def double(k):
                return 2 * k
        """}, select=["RL011"])
        assert findings == []

    def test_suppression_honored(self):
        findings = run_project({SRC: """
            def select(k, deadline=None):
                # sweep is O(1) here; budget irrelevant
                return sweep(k)  # repro-lint: disable=RL011 -- constant-time callee

            def sweep(k, deadline=None):
                return k
        """}, select=["RL011"])
        assert findings == []


class TestRL012HalfOpenIntervals:
    def test_closed_chained_window_flagged(self):
        findings = run_project({SRC: """
            def members(t0, t1, ts):
                return [t for t in ts if t0 <= t <= t1]
        """}, select=["RL012"])
        assert codes(findings) == ["RL012"]
        assert "half-open" in findings[0].message

    def test_closed_scalar_upper_bound_flagged(self):
        findings = run_project({SRC: """
            def in_window(ts, t_end):
                return ts <= t_end
        """}, select=["RL012"])
        assert codes(findings) == ["RL012"]

    def test_half_open_window_clean(self):
        findings = run_project({SRC: """
            def members(t0, t1, ts):
                return [t for t in ts if t0 <= t < t1]
        """}, select=["RL012"])
        assert findings == []

    def test_bound_ordering_and_scalars_clean(self):
        findings = run_project({SRC: """
            def validate(t0, t1, time_hysteresis):
                assert t0 <= t1
                assert 0.0 <= time_hysteresis <= 1.0
        """}, select=["RL012"])
        assert findings == []

    def test_suppression_honored(self):
        findings = run_project({SRC: """
            def members(t0, t1, ts):
                # inclusive by spec: final frame owns its right edge
                return [t for t in ts if t0 <= t <= t1]  # repro-lint: disable=RL012 -- spec-inclusive
        """}, select=["RL012"])
        assert findings == []
