"""Tests for spatial similarity models and CombinedSimilarity."""

import numpy as np
import pytest

from repro.similarity import (
    CombinedSimilarity,
    EuclideanSimilarity,
    GaussianSpatialSimilarity,
    MatrixSimilarity,
)


@pytest.fixture
def points():
    gen = np.random.default_rng(5)
    return gen.random(30), gen.random(30)


class TestEuclideanSimilarity:
    def test_self_similarity(self, points):
        xs, ys = points
        model = EuclideanSimilarity(xs, ys)
        for i in range(len(xs)):
            assert model.sim(i, i) == 1.0

    def test_range_and_symmetry(self, points):
        xs, ys = points
        model = EuclideanSimilarity(xs, ys)
        for i in range(0, 30, 5):
            for j in range(0, 30, 7):
                s = model.sim(i, j)
                assert 0.0 <= s <= 1.0
                assert s == pytest.approx(model.sim(j, i))

    def test_decreases_with_distance(self):
        xs = np.array([0.0, 0.1, 0.9])
        ys = np.zeros(3)
        model = EuclideanSimilarity(xs, ys, d_max=1.0)
        assert model.sim(0, 1) > model.sim(0, 2)
        assert model.sim(0, 1) == pytest.approx(0.9)

    def test_default_dmax_is_frame_diagonal(self):
        xs = np.array([0.0, 3.0])
        ys = np.array([0.0, 4.0])
        model = EuclideanSimilarity(xs, ys)
        assert model.d_max == pytest.approx(5.0)
        assert model.sim(0, 1) == pytest.approx(0.0)

    def test_clamps_at_zero_beyond_dmax(self):
        xs = np.array([0.0, 2.0])
        ys = np.array([0.0, 0.0])
        model = EuclideanSimilarity(xs, ys, d_max=1.0)
        assert model.sim(0, 1) == 0.0

    def test_dmax_validation(self, points):
        xs, ys = points
        with pytest.raises(ValueError):
            EuclideanSimilarity(xs, ys, d_max=0.0)

    def test_sims_to_and_kernel_agree(self, points):
        xs, ys = points
        model = EuclideanSimilarity(xs, ys)
        ids = np.array([0, 7, 14, 21])
        kernel = model.row_kernel(ids)
        for v in range(0, 30, 3):
            assert kernel(v) == pytest.approx(model.sims_to(v, ids))


class TestGaussianSpatialSimilarity:
    def test_self_similarity(self, points):
        xs, ys = points
        model = GaussianSpatialSimilarity(xs, ys, sigma=0.1)
        for i in range(len(xs)):
            assert model.sim(i, i) == 1.0

    def test_sigma_controls_decay(self):
        xs = np.array([0.0, 0.2])
        ys = np.array([0.0, 0.0])
        tight = GaussianSpatialSimilarity(xs, ys, sigma=0.05)
        loose = GaussianSpatialSimilarity(xs, ys, sigma=0.5)
        assert tight.sim(0, 1) < loose.sim(0, 1)

    def test_known_value(self):
        xs = np.array([0.0, 1.0])
        ys = np.array([0.0, 0.0])
        model = GaussianSpatialSimilarity(xs, ys, sigma=1.0)
        assert model.sim(0, 1) == pytest.approx(np.exp(-0.5))

    def test_sigma_validation(self, points):
        xs, ys = points
        with pytest.raises(ValueError):
            GaussianSpatialSimilarity(xs, ys, sigma=-1.0)

    def test_kernel_agrees(self, points):
        xs, ys = points
        model = GaussianSpatialSimilarity(xs, ys, sigma=0.2)
        ids = np.arange(30)
        kernel = model.row_kernel(ids)
        for v in (0, 15, 29):
            assert kernel(v) == pytest.approx(model.sims_to(v, ids))


class TestCombinedSimilarity:
    @pytest.fixture
    def combo(self, points):
        xs, ys = points
        gen = np.random.default_rng(8)
        return CombinedSimilarity(
            [MatrixSimilarity.random(30, gen),
             GaussianSpatialSimilarity(xs, ys, sigma=0.2)],
            [0.7, 0.3],
        )

    def test_weighted_mix(self, combo):
        a, b = combo.models
        for i, j in [(0, 1), (5, 20), (3, 3)]:
            want = 0.7 * a.sim(i, j) + 0.3 * b.sim(i, j)
            assert combo.sim(i, j) == pytest.approx(want)

    def test_contract_preserved(self, combo):
        for i in range(0, 30, 4):
            assert combo.sim(i, i) == pytest.approx(1.0)
            for j in range(0, 30, 6):
                assert 0.0 <= combo.sim(i, j) <= 1.0

    def test_default_equal_weights(self, points):
        xs, ys = points
        gen = np.random.default_rng(9)
        a = MatrixSimilarity.random(30, gen)
        b = GaussianSpatialSimilarity(xs, ys, sigma=0.2)
        combo = CombinedSimilarity([a, b])
        assert combo.sim(1, 2) == pytest.approx(
            0.5 * a.sim(1, 2) + 0.5 * b.sim(1, 2)
        )

    def test_weight_validation(self, points):
        xs, ys = points
        model = GaussianSpatialSimilarity(xs, ys, sigma=0.2)
        with pytest.raises(ValueError, match="sum to 1"):
            CombinedSimilarity([model], [0.5])
        with pytest.raises(ValueError, match="non-negative"):
            CombinedSimilarity([model, model], [1.5, -0.5])
        with pytest.raises(ValueError, match="one weight per model"):
            CombinedSimilarity([model], [0.5, 0.5])
        with pytest.raises(ValueError, match="at least one"):
            CombinedSimilarity([])

    def test_size_mismatch_rejected(self, points):
        xs, ys = points
        a = GaussianSpatialSimilarity(xs, ys, sigma=0.2)
        b = MatrixSimilarity.random(10, np.random.default_rng(0))
        with pytest.raises(ValueError, match="disagree on size"):
            CombinedSimilarity([a, b])

    def test_sims_to_kernel_and_bulk_agree(self, combo):
        ids = np.arange(30)
        kernel = combo.row_kernel(ids)
        weights = np.linspace(0.0, 1.0, 30)
        bulk = combo.weighted_sims_sum(ids, ids, weights)
        for v in (0, 10, 29):
            row = combo.sims_to(v, ids)
            assert kernel(v) == pytest.approx(row)
            assert bulk[v] == pytest.approx(float(np.dot(weights, row)))
