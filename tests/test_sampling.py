"""Tests for SaSS (Algorithm 2) and the sample-size formulas."""

import math

import numpy as np
import pytest

from repro import (
    GeoDataset,
    RegionQuery,
    hoeffding_sample_size,
    sass_select,
    serfling_sample_size,
)
from repro.geo import BoundingBox
from repro.geo.distance import pairwise_min_distance


class TestSampleSizes:
    def test_hoeffding_formula(self):
        # m = ceil(ln(2/δ) / (2 ε²))
        eps, delta = 0.05, 0.1
        want = math.ceil(math.log(2 / delta) / (2 * eps * eps))
        assert hoeffding_sample_size(eps, delta) == want

    def test_hoeffding_paper_defaults_magnitude(self):
        # Paper defaults (ε=.05, δ=.1) need ~600 samples — the reason
        # <2% of even 100M objects suffices.
        m = hoeffding_sample_size(0.05, 0.1)
        assert 550 <= m <= 650

    def test_serfling_tighter_than_hoeffding(self):
        for population in (1_000, 50_000, 10**6):
            s = serfling_sample_size(0.05, 0.1, population)
            h = hoeffding_sample_size(0.05, 0.1)
            assert s <= h

    def test_serfling_converges_to_hoeffding(self):
        s = serfling_sample_size(0.05, 0.1, 10**12)
        h = hoeffding_sample_size(0.05, 0.1)
        assert abs(s - h) <= 1

    def test_serfling_capped_by_population(self):
        assert serfling_sample_size(0.01, 0.01, 50) == 50

    def test_smaller_epsilon_needs_more_samples(self):
        assert hoeffding_sample_size(0.03, 0.1) > hoeffding_sample_size(0.07, 0.1)
        assert serfling_sample_size(0.03, 0.1, 10**6) > serfling_sample_size(
            0.07, 0.1, 10**6
        )

    def test_smaller_delta_needs_more_samples(self):
        assert hoeffding_sample_size(0.05, 0.05) > hoeffding_sample_size(
            0.05, 0.2
        )

    def test_parameter_validation(self):
        for eps, delta in [(0.0, 0.1), (1.0, 0.1), (0.05, 0.0), (0.05, 1.0)]:
            with pytest.raises(ValueError):
                hoeffding_sample_size(eps, delta)
            with pytest.raises(ValueError):
                serfling_sample_size(eps, delta, 100)
        with pytest.raises(ValueError):
            serfling_sample_size(0.05, 0.1, 0)


@pytest.fixture
def big_uniform():
    gen = np.random.default_rng(31)
    n = 30_000
    return GeoDataset.build(gen.random(n), gen.random(n))


WHOLE = BoundingBox(0.0, 0.0, 1.0, 1.0)


class TestSassSelect:
    def test_respects_k_and_visibility(self, big_uniform):
        query = RegionQuery(region=WHOLE, k=25, theta=0.01)
        result = sass_select(big_uniform, query, rng=np.random.default_rng(1))
        assert len(result) == 25
        sel = result.selected
        assert pairwise_min_distance(
            big_uniform.xs[sel], big_uniform.ys[sel]
        ) >= query.theta

    def test_sample_size_matches_bound(self, big_uniform):
        query = RegionQuery(region=WHOLE, k=10, theta=0.0)
        result = sass_select(
            big_uniform, query, epsilon=0.05, delta=0.1,
            bound="serfling", rng=np.random.default_rng(2),
        )
        want = serfling_sample_size(0.05, 0.1, len(big_uniform))
        assert result.stats["sample_size"] == want
        assert result.stats["sampling_ratio"] == pytest.approx(
            want / len(big_uniform)
        )

    def test_hoeffding_bound_option(self, big_uniform):
        query = RegionQuery(region=WHOLE, k=10, theta=0.0)
        result = sass_select(
            big_uniform, query, bound="hoeffding",
            rng=np.random.default_rng(3),
        )
        assert result.stats["sample_size"] == hoeffding_sample_size(0.05, 0.1)

    def test_unknown_bound_rejected(self, big_uniform):
        query = RegionQuery(region=WHOLE, k=10, theta=0.0)
        with pytest.raises(ValueError, match="bound"):
            sass_select(big_uniform, query, bound="chernoff")

    def test_empty_region(self, big_uniform):
        query = RegionQuery(
            region=BoundingBox(3.0, 3.0, 4.0, 4.0), k=5, theta=0.0
        )
        result = sass_select(big_uniform, query)
        assert len(result) == 0
        assert result.stats["sample_size"] == 0

    def test_selection_comes_from_sample(self, big_uniform):
        query = RegionQuery(region=WHOLE, k=15, theta=0.005)
        result = sass_select(big_uniform, query, rng=np.random.default_rng(4))
        assert set(result.selected.tolist()) <= set(result.region_ids.tolist())

    def test_deterministic_under_rng(self, big_uniform):
        query = RegionQuery(region=WHOLE, k=10, theta=0.005)
        a = sass_select(big_uniform, query, rng=np.random.default_rng(99))
        b = sass_select(big_uniform, query, rng=np.random.default_rng(99))
        assert a.selected.tolist() == b.selected.tolist()

    def test_full_score_evaluation(self, big_uniform):
        from repro import representative_score

        query = RegionQuery(region=WHOLE, k=10, theta=0.005)
        result = sass_select(
            big_uniform, query, rng=np.random.default_rng(5),
            evaluate_full_score=True,
        )
        all_ids = big_uniform.objects_in(WHOLE)
        want = representative_score(big_uniform, all_ids, result.selected)
        assert result.stats["full_score"] == pytest.approx(want)
        assert result.stats["score_difference"] == pytest.approx(
            abs(want - result.score)
        )

    def test_score_error_within_epsilon(self, big_uniform):
        """Theorem 6.3's practical consequence: the sample score tracks
        the full-population score within ~ε (checked across seeds with
        a small allowance since δ=0.1 permits rare excursions)."""
        query = RegionQuery(region=WHOLE, k=20, theta=0.005)
        epsilon = 0.05
        failures = 0
        for seed in range(10):
            result = sass_select(
                big_uniform, query, epsilon=epsilon, delta=0.1,
                rng=np.random.default_rng(seed), evaluate_full_score=True,
            )
            if result.stats["score_difference"] > epsilon:
                failures += 1
        assert failures <= 2  # δ = 0.1 allows occasional misses
