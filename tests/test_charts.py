"""Tests for the ASCII chart renderer."""

import pytest

from repro.experiments import render_chart


class TestRenderChart:
    def test_basic_structure(self):
        out = render_chart(
            [1, 2, 3], {"a": [1.0, 2.0, 3.0]}, width=20, height=6,
            title="t",
        )
        lines = out.splitlines()
        assert lines[0] == "t"
        assert len([line for line in lines if "|" in line]) == 6
        assert "o=a" in lines[-1]
        assert "1 .. 3" in out

    def test_extremes_land_on_edges(self):
        out = render_chart([0, 1], {"a": [0.0, 10.0]}, width=10, height=5)
        rows = [line for line in out.splitlines() if "|" in line]
        assert "o" in rows[0]       # max on the top row
        assert "o" in rows[-1]      # min on the bottom row

    def test_multiple_series_symbols(self):
        out = render_chart(
            [1, 2], {"a": [1, 2], "b": [2, 1], "c": [1.5, 1.5]},
            width=12, height=5,
        )
        legend = out.splitlines()[-1]
        assert "o=a" in legend and "x=b" in legend and "+=c" in legend

    def test_log_scale_labels(self):
        out = render_chart(
            [1, 2], {"a": [0.01, 100.0]}, width=10, height=5, log_y=True
        )
        assert "100" in out
        assert "0.01" in out

    def test_log_scale_clamps_nonpositive(self):
        out = render_chart(
            [1, 2, 3], {"a": [0.0, 0.1, 1.0]}, width=10, height=5,
            log_y=True,
        )
        assert "|" in out  # no crash; zero clamped to 0.1

    def test_single_point(self):
        out = render_chart([5], {"a": [3.0]}, width=10, height=4)
        assert "o" in out

    def test_flat_series(self):
        out = render_chart([1, 2, 3], {"a": [2.0, 2.0, 2.0]},
                           width=10, height=4)
        grid = "".join(line for line in out.splitlines() if "|" in line)
        assert grid.count("o") == 3

    def test_validation(self):
        with pytest.raises(ValueError, match="at least one series"):
            render_chart([1], {})
        with pytest.raises(ValueError, match="length mismatch"):
            render_chart([1, 2], {"a": [1.0]})
        with pytest.raises(ValueError, match="at least 8x4"):
            render_chart([1], {"a": [1.0]}, width=4, height=2)
        with pytest.raises(ValueError, match="at least one x"):
            render_chart([], {"a": []})
        many = {str(i): [1.0] for i in range(9)}
        with pytest.raises(ValueError, match="at most"):
            render_chart([1], many)
