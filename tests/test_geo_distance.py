"""Tests for repro.geo.distance."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.geo import (
    euclidean,
    euclidean_many,
    haversine,
    haversine_many,
    pairwise_min_distance,
    squared_euclidean,
)

coord = st.floats(min_value=-1e3, max_value=1e3,
                  allow_nan=False, allow_infinity=False)


class TestEuclidean:
    def test_basic(self):
        assert euclidean(0, 0, 3, 4) == pytest.approx(5.0)

    def test_squared(self):
        assert squared_euclidean(0, 0, 3, 4) == pytest.approx(25.0)

    def test_many_matches_scalar(self):
        xs = np.array([0.0, 1.0, 3.0])
        ys = np.array([0.0, 1.0, 4.0])
        got = euclidean_many(0.0, 0.0, xs, ys)
        want = [euclidean(0, 0, x, y) for x, y in zip(xs, ys)]
        assert got == pytest.approx(want)

    def test_many_empty(self):
        out = euclidean_many(0.0, 0.0, np.array([]), np.array([]))
        assert len(out) == 0

    @given(coord, coord, coord, coord)
    def test_scalar_vector_agree(self, x1, y1, x2, y2):
        vec = euclidean_many(x1, y1, np.array([x2]), np.array([y2]))[0]
        assert vec == pytest.approx(euclidean(x1, y1, x2, y2))


class TestHaversine:
    def test_zero_distance(self):
        assert haversine(103.8, 1.35, 103.8, 1.35) == 0.0

    def test_london_to_paris(self):
        # London (−0.1276, 51.5072) to Paris (2.3522, 48.8566): ~344 km.
        d = haversine(-0.1276, 51.5072, 2.3522, 48.8566)
        assert d == pytest.approx(344, rel=0.02)

    def test_quarter_meridian(self):
        # Equator to pole along a meridian is a quarter circumference.
        d = haversine(0.0, 0.0, 0.0, 90.0)
        assert d == pytest.approx(10_007.5, rel=0.01)

    def test_many_matches_scalar(self):
        lons = np.array([2.3522, 13.405])
        lats = np.array([48.8566, 52.52])
        got = haversine_many(-0.1276, 51.5072, lons, lats)
        want = [haversine(-0.1276, 51.5072, lo, la) for lo, la in zip(lons, lats)]
        assert got == pytest.approx(want)

    @given(
        st.floats(-180, 180), st.floats(-89, 89),
        st.floats(-180, 180), st.floats(-89, 89),
    )
    def test_symmetry(self, lon1, lat1, lon2, lat2):
        assert haversine(lon1, lat1, lon2, lat2) == pytest.approx(
            haversine(lon2, lat2, lon1, lat1), abs=1e-6
        )


class TestPairwiseMinDistance:
    def test_fewer_than_two(self):
        assert pairwise_min_distance(np.array([]), np.array([])) == np.inf
        assert pairwise_min_distance(np.array([1.0]), np.array([1.0])) == np.inf

    def test_known_minimum(self):
        xs = np.array([0.0, 1.0, 0.1])
        ys = np.array([0.0, 0.0, 0.0])
        assert pairwise_min_distance(xs, ys) == pytest.approx(0.1)

    def test_coincident_points(self):
        xs = np.array([0.5, 0.5, 1.0])
        ys = np.array([0.5, 0.5, 1.0])
        assert pairwise_min_distance(xs, ys) == 0.0

    def test_matches_bruteforce(self, rng):
        xs = rng.random(30)
        ys = rng.random(30)
        best = min(
            np.hypot(xs[i] - xs[j], ys[i] - ys[j])
            for i in range(30)
            for j in range(i + 1, 30)
        )
        assert pairwise_min_distance(xs, ys) == pytest.approx(best)
