"""Tests for the map-exploration extension (Sec. 3.2, Fig. 1(c))."""

import numpy as np
import pytest

from repro import (
    GeoDataset,
    assign_representatives,
    represented_objects,
    similarity_to_set,
)
from repro.similarity import MatrixSimilarity


@pytest.fixture
def ds():
    # Two tight similarity groups: {0,1,2} and {3,4}.
    sim = np.eye(5)
    for i, j in [(0, 1), (0, 2), (1, 2)]:
        sim[i, j] = sim[j, i] = 0.9
    sim[3, 4] = sim[4, 3] = 0.8
    gen = np.random.default_rng(0)
    return GeoDataset.build(
        gen.random(5), gen.random(5), similarity=MatrixSimilarity(sim)
    )


class TestAssignRepresentatives:
    def test_groups_assigned_to_their_member(self, ds):
        ids = np.arange(5)
        selected = np.array([0, 3])
        reps = assign_representatives(ds, ids, selected)
        assert reps.tolist() == [0, 0, 0, 3, 3]

    def test_selected_represent_themselves(self, ds):
        ids = np.arange(5)
        selected = np.array([1, 4])
        reps = assign_representatives(ds, ids, selected)
        assert reps[1] == 1
        assert reps[4] == 4

    def test_empty_selection_rejected(self, ds):
        with pytest.raises(ValueError):
            assign_representatives(ds, np.arange(5), np.array([]))

    def test_assignment_consistent_with_sim_to_set(self, ds):
        ids = np.arange(5)
        selected = np.array([0, 3])
        reps = assign_representatives(ds, ids, selected)
        for obj, rep in zip(ids, reps):
            assert ds.similarity.sim(int(obj), int(rep)) == pytest.approx(
                similarity_to_set(ds, int(obj), selected)
            )


class TestRepresentedObjects:
    def test_click_expands_group(self, ds):
        ids = np.arange(5)
        selected = np.array([0, 3])
        assert represented_objects(ds, ids, selected, 0).tolist() == [1, 2]
        assert represented_objects(ds, ids, selected, 3).tolist() == [4]

    def test_marker_excluded_from_own_group(self, ds):
        ids = np.arange(5)
        selected = np.array([0, 3])
        for marker in (0, 3):
            mine = represented_objects(ds, ids, selected, marker)
            assert marker not in mine.tolist()

    def test_partition_covers_region(self, ds):
        ids = np.arange(5)
        selected = np.array([0, 3])
        covered = set(selected.tolist())
        for marker in selected:
            covered.update(
                represented_objects(ds, ids, selected, int(marker)).tolist()
            )
        assert covered == set(ids.tolist())
