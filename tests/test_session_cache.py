"""Tests for the session-level caching layer.

Covers the warm-start selection cache (bit-identical to cold starts,
real similarity-evaluation savings), the per-step cache counters on
:class:`NavigationStep`, and invalidation on dataset swap.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import GeoDataset, MapSession, MetricsRegistry, SimilarityCache
from repro.geo import BoundingBox
from repro.similarity import MatrixSimilarity


def quarter(frame: BoundingBox) -> BoundingBox:
    """The lower-left quarter of ``frame`` — a roomy starting viewport."""
    return BoundingBox(
        frame.minx,
        frame.miny,
        frame.minx + frame.width * 0.5,
        frame.miny + frame.height * 0.5,
    )


def zoom_in_trace(session: MapSession, region: BoundingBox):
    steps = [session.start(region)]
    for scale in (0.8, 0.75, 0.8):
        steps.append(session.zoom_in(scale))
    return steps


class TestWarmStartEquivalence:
    def test_warm_selections_bit_identical_to_cold(self, text_dataset):
        region = quarter(text_dataset.frame())
        cold = MapSession(text_dataset, k=15, similarity_cache=False)
        warm = MapSession(
            text_dataset, k=15, similarity_cache=True, warm_start=True
        )
        for c, w in zip(zoom_in_trace(cold, region), zoom_in_trace(warm, region)):
            np.testing.assert_array_equal(c.result.selected, w.result.selected)
            assert c.result.score == w.result.score  # bitwise, not approx

    def test_warm_start_actually_engages_and_saves(self, text_dataset):
        region = quarter(text_dataset.frame())
        # Count-only cache: the cold baseline's evaluation counter.
        counting = SimilarityCache(text_dataset.similarity, max_entries=0)
        cold = MapSession(
            text_dataset, k=15, similarity_cache=counting, warm_start=False
        )
        warm = MapSession(text_dataset, k=15, similarity_cache=True)
        cold_steps = zoom_in_trace(cold, region)
        warm_steps = zoom_in_trace(warm, region)

        assert not any(s.warm_started for s in cold_steps)
        assert all(s.warm_started for s in warm_steps[1:])
        cold_pairs = sum(
            s.stats["sim_pairs_evaluated"] for s in cold_steps[1:]
        )
        warm_pairs = sum(
            s.stats["sim_pairs_evaluated"] for s in warm_steps[1:]
        )
        assert cold_pairs > 0
        # The navigation steps themselves should be (nearly) free: the
        # CI benchmark gates at 30%, the unit test at well above that.
        assert warm_pairs < cold_pairs * 0.5

    def test_equivalence_check_mode_passes_and_marks_stats(self, text_dataset):
        region = quarter(text_dataset.frame())
        session = MapSession(
            text_dataset, k=12, similarity_cache=True, equivalence_check=True
        )
        session.start(region)
        step = session.zoom_in(0.8)
        assert step.warm_started
        assert step.stats["equivalence_checked"] is True

    def test_warm_start_skipped_below_overlap_threshold(self, text_dataset):
        region = quarter(text_dataset.frame())
        session = MapSession(
            text_dataset, k=12, similarity_cache=True,
            warm_start_min_overlap=0.5,
        )
        session.start(region)
        step = session.zoom_in(0.6)  # area ratio 0.36 < 0.5
        assert not step.warm_started
        assert session.metrics.count("warm.skipped.low_overlap") == 1

    def test_pan_is_not_warm_started(self, text_dataset):
        # A panned viewport is not contained in the previous one, so
        # the captured masses are not valid bounds (Lemma 5.1 needs
        # population containment) — the session must serve it cold.
        region = quarter(text_dataset.frame())
        session = MapSession(text_dataset, k=12, similarity_cache=True)
        session.start(region)
        step = session.pan(dx=region.width * 0.3)
        assert not step.warm_started
        assert session.metrics.count("warm.skipped.not_contained") == 1

    def test_warm_start_requires_similarity_cache(self, text_dataset):
        region = quarter(text_dataset.frame())
        session = MapSession(text_dataset, k=12, warm_start=True)
        session.start(region)
        step = session.zoom_in(0.8)
        assert not step.warm_started  # no cache => no selection cache


class TestStepCounters:
    def test_steps_record_cache_movement(self, text_dataset):
        region = quarter(text_dataset.frame())
        session = MapSession(text_dataset, k=12, similarity_cache=True)
        for step in zoom_in_trace(session, region):
            assert step.cache_hits >= 0
            assert step.cache_misses >= 0
            assert "cache_hits" in step.stats
            assert "sim_pairs_evaluated" in step.stats
            assert step.tier == "exact"
        first, rest = session.history[0], session.history[1:]
        assert first.cache_misses > 0  # cold fill
        assert any(s.cache_hits > 0 for s in rest)

    def test_counters_zero_without_cache(self, text_dataset):
        region = quarter(text_dataset.frame())
        session = MapSession(text_dataset, k=12)
        step = session.start(region)
        assert step.cache_hits == 0
        assert step.cache_misses == 0
        assert "cache_hits" not in step.stats

    def test_session_metrics_registry_populated(self, text_dataset):
        region = quarter(text_dataset.frame())
        metrics = MetricsRegistry()
        session = MapSession(
            text_dataset, k=12, similarity_cache=True, metrics=metrics
        )
        zoom_in_trace(session, region)
        assert metrics.count("index.queries") >= 4
        assert metrics.count("session.op.initial") == 1
        assert metrics.count("session.op.zoom_in") == 3
        assert metrics.count("ladder.tier.exact") == 4
        assert metrics.count("warm.captures") >= 1
        assert metrics.summary("session.op_seconds")["count"] == 4


def _matrix_pair(n: int = 60):
    """Two same-size datasets, same coordinates, different similarities."""
    gen = np.random.default_rng(21)
    xs, ys = gen.random(n), gen.random(n)
    ds_a = GeoDataset.build(
        xs, ys, similarity=MatrixSimilarity.random(n, np.random.default_rng(1))
    )
    ds_b = GeoDataset.build(
        xs, ys, similarity=MatrixSimilarity.random(n, np.random.default_rng(2))
    )
    return ds_a, ds_b


class TestDatasetSwap:
    def test_swap_invalidates_and_matches_fresh_session(self):
        ds_a, ds_b = _matrix_pair()
        region = BoundingBox(0.0, 0.0, 1.0, 1.0)
        session = MapSession(ds_a, k=8, similarity_cache=True)
        session.start(region)

        session.swap_dataset(ds_b)
        swapped = session.start(region)

        fresh = MapSession(ds_b, k=8, similarity_cache=True).start(region)
        np.testing.assert_array_equal(
            swapped.result.selected, fresh.result.selected
        )
        assert swapped.result.score == fresh.result.score

    def test_swap_prevents_stale_hits(self):
        ds_a, ds_b = _matrix_pair()
        region = BoundingBox(0.0, 0.0, 1.0, 1.0)
        session = MapSession(ds_a, k=8, similarity_cache=True)
        session.start(region)
        session.swap_dataset(ds_b)
        # Everything must be recomputed: the post-swap selection pays
        # full evaluation cost instead of serving ds_a's rows.
        step = session.start(region)
        assert step.stats["sim_pairs_evaluated"] > 0
        assert not step.warm_started
        assert session.metrics.count("sim.invalidations") == 1
        assert session.metrics.count("session.dataset_swaps") == 1

    def test_swap_resets_viewport(self):
        ds_a, ds_b = _matrix_pair()
        region = BoundingBox(0.0, 0.0, 1.0, 1.0)
        session = MapSession(ds_a, k=8, similarity_cache=True)
        session.start(region)
        session.swap_dataset(ds_b)
        assert session.region is None
        assert len(session.visible) == 0

    def test_swap_rejects_size_mismatch(self):
        ds_a, _ = _matrix_pair()
        gen = np.random.default_rng(9)
        smaller = GeoDataset.build(gen.random(10), gen.random(10))
        session = MapSession(ds_a, k=8, similarity_cache=True)
        with pytest.raises(ValueError, match="same-size"):
            session.swap_dataset(smaller)

    def test_swap_without_cache_still_swaps(self):
        ds_a, ds_b = _matrix_pair()
        region = BoundingBox(0.0, 0.0, 1.0, 1.0)
        session = MapSession(ds_a, k=8)
        session.start(region)
        session.swap_dataset(ds_b)
        fresh = MapSession(ds_b, k=8).start(region)
        np.testing.assert_array_equal(
            session.start(region).result.selected, fresh.result.selected
        )


@pytest.mark.slow
class TestPrefetchInterplay:
    def test_prefetch_and_cache_stay_bit_identical(self, text_dataset):
        region = quarter(text_dataset.frame())
        plain = MapSession(text_dataset, k=12)
        cached = MapSession(
            text_dataset, k=12, prefetch=True, similarity_cache=True,
            equivalence_check=True,
        )
        for p, c in zip(zoom_in_trace(plain, region), zoom_in_trace(cached, region)):
            np.testing.assert_array_equal(p.result.selected, c.result.selected)
