"""Warm-pool lifecycle: ownership, double close, and thread leaks.

The raw-speed pass made pools long-lived (warmed at session setup,
shared across sessions in the service).  Long-lived executors are
exactly the kind of resource that leaks silently, so this suite pins
the lifecycle contract:

* ``MapSession.close()`` is idempotent and releases the owned pool's
  threads — repeated create/navigate/close cycles leave the process
  thread count where it started.
* A *shared* pool (``pool=`` at construction) is never closed by the
  session: ``close()`` and ``swap_dataset()`` detach instead, and the
  owner (the service's :class:`SessionManager`) closes it exactly once
  in ``close_all()``.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.core import GeoDataset, MapSession
from repro.geo.bbox import BoundingBox
from repro.parallel import WorkerPool
from repro.service.sessions import SessionManager
from repro.similarity.spatial import GaussianSpatialSimilarity


def _make_dataset(seed: int = 11, n: int = 300) -> GeoDataset:
    rng = np.random.default_rng(seed)
    xs = rng.uniform(0.0, 100.0, n)
    ys = rng.uniform(0.0, 100.0, n)
    weights = rng.uniform(0.1, 1.0, n)
    return GeoDataset.build(
        xs=xs,
        ys=ys,
        weights=weights,
        similarity=GaussianSpatialSimilarity(xs, ys, sigma=15.0),
    )


REGION = BoundingBox(10.0, 10.0, 90.0, 90.0)


def _settled_thread_count() -> int:
    # Let daemon helpers from previous tests wind down before counting.
    for thread in threading.enumerate():
        if not thread.is_alive():  # pragma: no cover
            thread.join(0.01)
    return threading.active_count()


class TestOwnedPoolLifecycle:
    def test_close_is_idempotent(self):
        session = MapSession(
            _make_dataset(), k=8, workers=2, parallel_backend="thread"
        )
        session.start(REGION)
        session.close()
        session.close()  # second close must be a silent no-op
        assert session.closed
        # The session stays usable, just sequential.
        step = session.pan(0.1, 0.0)
        assert len(step.result.selected) > 0

    def test_owned_pool_is_warmed_at_construction(self):
        session = MapSession(
            _make_dataset(), k=8, workers=2, parallel_backend="thread"
        )
        try:
            assert session._pool is not None
            assert session._pool.warmed
            assert session.metrics.count("parallel.pool_warms") == 1
        finally:
            session.close()

    def test_repeated_sessions_leak_no_threads(self):
        dataset = _make_dataset()
        baseline = _settled_thread_count()
        for _ in range(3):
            session = MapSession(
                dataset, k=8, workers=4, parallel_backend="thread"
            )
            session.start(REGION)
            session.pan(0.2, 0.0)
            session.close()
        assert _settled_thread_count() <= baseline

    def test_context_manager_closes_pool(self):
        with MapSession(
            _make_dataset(), k=8, workers=2, parallel_backend="thread"
        ) as session:
            pool = session._pool
            session.start(REGION)
        assert pool is not None and pool.closed
        assert session.closed


class TestSharedPoolLifecycle:
    def test_session_close_detaches_but_never_closes(self):
        dataset = _make_dataset()
        pool = WorkerPool(
            2, "thread", similarity=dataset.similarity
        ).warm()
        try:
            session = MapSession(dataset, k=8, pool=pool)
            session.start(REGION)
            session.close()
            session.close()
            assert not pool.closed
            assert pool.warmed  # executor survived the session
        finally:
            pool.close()
        assert pool.closed

    def test_shared_pool_rejects_workers_and_cache(self):
        dataset = _make_dataset()
        pool = WorkerPool(2, "thread", similarity=dataset.similarity)
        try:
            with pytest.raises(ValueError, match="not both"):
                MapSession(dataset, k=8, pool=pool, workers=2)
            with pytest.raises(ValueError, match="similarity_cache"):
                MapSession(
                    dataset, k=8, pool=pool, similarity_cache=True
                )
        finally:
            pool.close()

    def test_swap_dataset_detaches_shared_pool(self):
        dataset = _make_dataset(seed=11)
        replacement = _make_dataset(seed=12)
        pool = WorkerPool(
            2, "thread", similarity=dataset.similarity
        ).warm()
        try:
            session = MapSession(dataset, k=8, pool=pool)
            session.start(REGION)
            session.swap_dataset(replacement)
            # The session replaced the shared pool with an owned one
            # over the new model; the shared pool is untouched.
            assert not pool.closed
            assert session._pool is not pool
            assert session._owns_pool
            owned = session._pool
            session.close()
            assert owned is not None and owned.closed
            assert not pool.closed
        finally:
            pool.close()


class TestManagerSharedPools:
    def test_sessions_share_one_pool_per_dataset(self):
        manager = SessionManager(
            {"a": _make_dataset(seed=21), "b": _make_dataset(seed=22)},
            session_options={
                "k": 8, "workers": 2, "parallel_backend": "thread",
            },
        )
        try:
            first = manager.create(dataset="a")
            second = manager.create(dataset="a")
            other = manager.create(dataset="b")
            pool_a = first.session._pool
            assert pool_a is not None and pool_a.warmed
            assert second.session._pool is pool_a
            assert other.session._pool is not pool_a
            assert not first.session._owns_pool
            first.session.start(REGION)
            manager.remove(first.session_id)
            # Closing one session leaves the dataset's pool live for
            # the others.
            assert not pool_a.closed
            assert second.session._pool is pool_a
        finally:
            manager.close_all()
        assert pool_a.closed

    def test_close_all_releases_pool_threads(self):
        baseline = _settled_thread_count()
        manager = SessionManager(
            {"a": _make_dataset(seed=23)},
            session_options={
                "k": 8, "workers": 4, "parallel_backend": "thread",
            },
        )
        entry = manager.create()
        entry.session.start(REGION)
        manager.close_all()
        manager.close_all()  # idempotent
        assert _settled_thread_count() <= baseline

    def test_no_workers_means_no_pool(self):
        manager = SessionManager(
            {"a": _make_dataset(seed=24)}, session_options={"k": 8}
        )
        try:
            entry = manager.create()
            assert entry.session._pool is None
        finally:
            manager.close_all()
