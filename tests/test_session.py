"""Tests for the interactive MapSession — the consistency constraints.

These are the paper's zooming- and panning-consistency invariants
(Sec. 3.4), checked operation by operation and over random traces.
"""

import numpy as np
import pytest

from repro import MapSession
from repro.datasets import random_navigation_trace
from repro.geo import BoundingBox
from repro.geo.distance import pairwise_min_distance


@pytest.fixture
def session(text_dataset):
    return MapSession(text_dataset, k=10, theta_fraction=0.01)


def start_region(dataset, side=0.4):
    from repro.geo.point import Point

    gen = np.random.default_rng(17)
    best = None
    for _ in range(20):
        anchor = int(gen.integers(len(dataset)))
        region = BoundingBox.from_center(
            Point(float(dataset.xs[anchor]), float(dataset.ys[anchor])), side
        )
        ids = dataset.objects_in(region)
        if best is None or len(ids) > len(best[1]):
            best = (region, ids)
    return best[0]


class TestLifecycle:
    def test_requires_start(self, session):
        with pytest.raises(RuntimeError, match="not started"):
            session.zoom_in()
        with pytest.raises(RuntimeError):
            session.pan(0.1, 0.0)

    def test_start_selects_k(self, session, text_dataset):
        region = start_region(text_dataset)
        step = session.start(region)
        assert step.operation == "initial"
        assert len(step.result) <= session.k
        assert session.region == region

    def test_parameter_validation(self, text_dataset):
        with pytest.raises(ValueError):
            MapSession(text_dataset, k=0)
        with pytest.raises(ValueError):
            MapSession(text_dataset, theta_fraction=-0.1)
        with pytest.raises(ValueError):
            MapSession(text_dataset, zoom_out_max_scale=1.0)

    def test_history_grows(self, session, text_dataset):
        session.start(start_region(text_dataset))
        session.zoom_in()
        session.zoom_out()
        assert [s.operation for s in session.history] == [
            "initial", "zoom_in", "zoom_out",
        ]

    def test_close_is_idempotent(self, text_dataset):
        session = MapSession(text_dataset, k=5, workers=2)
        assert not session.closed
        session.close()
        assert session.closed
        session.close()  # double close must be a no-op
        assert session.closed

    def test_context_manager_plus_explicit_close(self, text_dataset):
        with MapSession(text_dataset, k=5, workers=2) as session:
            session.close()  # __exit__ will close again
        assert session.closed

    def test_concurrent_close_from_many_threads(self, text_dataset):
        import threading

        session = MapSession(text_dataset, k=5, workers=2)
        barrier = threading.Barrier(8)
        errors = []

        def close():
            barrier.wait()
            try:
                session.close()
            except Exception as exc:  # pragma: no cover - fail loud
                errors.append(exc)

        threads = [threading.Thread(target=close) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert errors == []
        assert session.closed


class TestZoomInConsistency:
    def test_visible_in_new_region_stay_visible(self, session, text_dataset):
        session.start(start_region(text_dataset))
        before = session.visible
        step = session.zoom_in(0.5)
        ds = text_dataset
        inside = step.region.contains_many(ds.xs[before], ds.ys[before])
        must_stay = set(before[inside].tolist())
        assert must_stay <= step.result.selected_set

    def test_target_outside_rejected(self, session, text_dataset):
        session.start(start_region(text_dataset))
        with pytest.raises(ValueError, match="inside"):
            session.zoom_in(target=session.region.panned(10.0, 0.0))

    def test_theta_scales_down(self, session, text_dataset):
        s0 = session.start(start_region(text_dataset))
        s1 = session.zoom_in(0.5)
        assert s1.theta == pytest.approx(s0.theta * 0.5)

    def test_selection_respects_new_theta(self, session, text_dataset):
        session.start(start_region(text_dataset))
        step = session.zoom_in(0.5)
        sel = step.result.selected
        if len(sel) >= 2:
            ds = text_dataset
            assert pairwise_min_distance(ds.xs[sel], ds.ys[sel]) >= step.theta


class TestZoomOutConsistency:
    def test_old_invisible_objects_stay_invisible(self, session, text_dataset):
        s0 = session.start(start_region(text_dataset, side=0.2))
        old_region = s0.region
        old_visible = set(s0.result.selected.tolist())
        step = session.zoom_out(2.0)
        ds = text_dataset
        for obj in step.result.selected:
            x, y = float(ds.xs[obj]), float(ds.ys[obj])
            if old_region.contains_point(x, y):
                # Zooming consistency: visible at coarse => visible at
                # finer granularity, so in-old-region picks must come
                # from the previously visible set.
                assert int(obj) in old_visible

    def test_target_must_contain_current(self, session, text_dataset):
        session.start(start_region(text_dataset))
        with pytest.raises(ValueError, match="contain"):
            session.zoom_out(target=session.region.zoomed_in(0.5))

    def test_theta_scales_up(self, session, text_dataset):
        s0 = session.start(start_region(text_dataset, side=0.2))
        s1 = session.zoom_out(2.0)
        assert s1.theta == pytest.approx(s0.theta * 2.0)


class TestPanConsistency:
    def test_overlap_visible_objects_stay(self, session, text_dataset):
        s0 = session.start(start_region(text_dataset))
        dx = s0.region.width * 0.4
        before = session.visible
        step = session.pan(dx, 0.0)
        ds = text_dataset
        inside = step.region.contains_many(ds.xs[before], ds.ys[before])
        must_stay = set(before[inside].tolist())
        assert must_stay <= step.result.selected_set

    def test_overlap_invisible_objects_stay_invisible(
        self, session, text_dataset
    ):
        s0 = session.start(start_region(text_dataset))
        old_region = s0.region
        old_visible = set(s0.result.selected.tolist())
        step = session.pan(old_region.width * 0.3, 0.0)
        ds = text_dataset
        for obj in step.result.selected:
            x, y = float(ds.xs[obj]), float(ds.ys[obj])
            if old_region.contains_point(x, y):
                assert int(obj) in old_visible

    def test_disjoint_pan_rejected(self, session, text_dataset):
        session.start(start_region(text_dataset))
        with pytest.raises(ValueError, match="overlap"):
            session.pan(10.0, 10.0)

    def test_size_change_rejected(self, session, text_dataset):
        session.start(start_region(text_dataset))
        bad = session.region.zoomed_in(0.9).panned(0.01, 0.0)
        with pytest.raises(ValueError, match="size"):
            session.pan(target=bad)

    def test_theta_unchanged(self, session, text_dataset):
        s0 = session.start(start_region(text_dataset))
        s1 = session.pan(s0.region.width * 0.2, 0.0)
        assert s1.theta == pytest.approx(s0.theta)


class TestPrefetchedSessionEquivalence:
    def test_prefetch_does_not_change_selections(self, text_dataset):
        region = start_region(text_dataset)
        plain = MapSession(text_dataset, k=10, theta_fraction=0.01)
        fast = MapSession(
            text_dataset, k=10, theta_fraction=0.01, prefetch=True
        )
        operations = [
            ("zoom_in", dict(scale=0.5)),
            ("pan", dict(dx=0.02, dy=0.0)),
            ("zoom_out", dict(scale=2.0)),
        ]
        a = plain.start(region)
        b = fast.start(region)
        assert a.result.selected.tolist() == b.result.selected.tolist()
        for op, kwargs in operations:
            a = getattr(plain, op)(**kwargs)
            b = getattr(fast, op)(**kwargs)
            assert a.result.selected.tolist() == b.result.selected.tolist(), op

    def test_prefetch_used_flag(self, text_dataset):
        session = MapSession(
            text_dataset, k=8, theta_fraction=0.01, prefetch=True
        )
        session.start(start_region(text_dataset))
        step = session.zoom_in(0.5)
        assert step.used_prefetch
        assert "zoom_in" in session.prefetch_elapsed


class TestRandomTraces:
    def test_invariants_hold_along_random_traces(self, text_dataset):
        for seed in range(3):
            rng = np.random.default_rng(seed)
            trace = random_navigation_trace(
                text_dataset, length=6, region_fraction=0.3, rng=rng
            )
            session = MapSession(text_dataset, k=8, theta_fraction=0.01)
            steps = trace.replay(session)
            ds = text_dataset
            for prev, step in zip(steps, steps[1:]):
                prev_visible = prev.result.selected
                if step.operation in ("zoom_in", "pan"):
                    inside = step.region.contains_many(
                        ds.xs[prev_visible], ds.ys[prev_visible]
                    )
                    must_stay = set(prev_visible[inside].tolist())
                    assert must_stay <= step.result.selected_set
                if step.operation in ("zoom_out", "pan"):
                    old_vis = set(prev_visible.tolist())
                    for obj in step.result.selected:
                        x = float(ds.xs[obj])
                        y = float(ds.ys[obj])
                        if prev.region.contains_point(x, y):
                            assert int(obj) in old_vis
                sel = step.result.selected
                if len(sel) >= 2:
                    assert pairwise_min_distance(
                        ds.xs[sel], ds.ys[sel]
                    ) >= step.theta - 1e-12


class TestScreenTheta:
    def test_ratio(self):
        from repro import theta_fraction_for_screen

        assert theta_fraction_for_screen(24, 800) == pytest.approx(0.03)

    def test_validation(self):
        from repro import theta_fraction_for_screen

        with pytest.raises(ValueError):
            theta_fraction_for_screen(0, 800)
        with pytest.raises(ValueError):
            theta_fraction_for_screen(24, 0)
        with pytest.raises(ValueError):
            theta_fraction_for_screen(900, 800)

    def test_plugs_into_session(self, text_dataset):
        from repro import theta_fraction_for_screen

        session = MapSession(
            text_dataset, k=5,
            theta_fraction=theta_fraction_for_screen(16, 640),
        )
        step = session.start(BoundingBox(0.1, 0.1, 0.9, 0.9))
        assert step.theta == pytest.approx(0.8 * 16 / 640)
