"""Tests for repro.geo.bbox — geometry and map-navigation semantics."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.geo import BoundingBox, Point

coord = st.floats(min_value=-100.0, max_value=100.0,
                  allow_nan=False, allow_infinity=False)


@st.composite
def boxes(draw):
    x1, x2 = sorted((draw(coord), draw(coord)))
    y1, y2 = sorted((draw(coord), draw(coord)))
    return BoundingBox(x1, y1, x2, y2)


class TestConstruction:
    def test_degenerate_raises(self):
        with pytest.raises(ValueError):
            BoundingBox(1.0, 0.0, 0.0, 1.0)
        with pytest.raises(ValueError):
            BoundingBox(0.0, 1.0, 1.0, 0.0)

    def test_zero_area_allowed(self):
        box = BoundingBox(0.5, 0.5, 0.5, 0.5)
        assert box.area == 0.0
        assert box.contains_point(0.5, 0.5)

    def test_from_center(self):
        box = BoundingBox.from_center(Point(0.5, 0.5), 0.2)
        assert box == BoundingBox(0.4, 0.4, 0.6, 0.6)

    def test_from_center_rectangle(self):
        box = BoundingBox.from_center(Point(0.0, 0.0), 2.0, 4.0)
        assert (box.width, box.height) == (2.0, 4.0)

    def test_from_points(self):
        xs = np.array([0.1, 0.9, 0.5])
        ys = np.array([0.2, 0.3, 0.8])
        assert BoundingBox.from_points(xs, ys) == BoundingBox(0.1, 0.2, 0.9, 0.8)

    def test_from_points_empty_raises(self):
        with pytest.raises(ValueError):
            BoundingBox.from_points(np.array([]), np.array([]))

    def test_unit(self):
        assert BoundingBox.unit() == BoundingBox(0.0, 0.0, 1.0, 1.0)

    def test_iter_unpacks(self):
        minx, miny, maxx, maxy = BoundingBox(1.0, 2.0, 3.0, 4.0)
        assert (minx, miny, maxx, maxy) == (1.0, 2.0, 3.0, 4.0)


class TestContainmentAndIntersection:
    def test_contains_point_boundary_inclusive(self):
        box = BoundingBox(0.0, 0.0, 1.0, 1.0)
        assert box.contains_point(0.0, 0.0)
        assert box.contains_point(1.0, 1.0)
        assert not box.contains_point(1.0001, 0.5)

    def test_contains_many(self):
        box = BoundingBox(0.0, 0.0, 1.0, 1.0)
        xs = np.array([0.5, 1.5, -0.1, 1.0])
        ys = np.array([0.5, 0.5, 0.5, 1.0])
        assert box.contains_many(xs, ys).tolist() == [True, False, False, True]

    def test_contains_box(self):
        outer = BoundingBox(0.0, 0.0, 1.0, 1.0)
        assert outer.contains_box(BoundingBox(0.2, 0.2, 0.8, 0.8))
        assert outer.contains_box(outer)
        assert not outer.contains_box(BoundingBox(0.5, 0.5, 1.5, 0.9))

    def test_intersects_touching(self):
        a = BoundingBox(0.0, 0.0, 1.0, 1.0)
        b = BoundingBox(1.0, 0.0, 2.0, 1.0)
        assert a.intersects(b)
        assert b.intersects(a)

    def test_disjoint(self):
        a = BoundingBox(0.0, 0.0, 1.0, 1.0)
        b = BoundingBox(1.1, 0.0, 2.0, 1.0)
        assert not a.intersects(b)
        assert a.intersection(b) is None

    def test_intersection_box(self):
        a = BoundingBox(0.0, 0.0, 2.0, 2.0)
        b = BoundingBox(1.0, 1.0, 3.0, 3.0)
        assert a.intersection(b) == BoundingBox(1.0, 1.0, 2.0, 2.0)

    def test_union(self):
        a = BoundingBox(0.0, 0.0, 1.0, 1.0)
        b = BoundingBox(2.0, -1.0, 3.0, 0.5)
        assert a.union(b) == BoundingBox(0.0, -1.0, 3.0, 1.0)

    def test_overlap_fraction(self):
        a = BoundingBox(0.0, 0.0, 2.0, 2.0)
        b = BoundingBox(1.0, 0.0, 3.0, 2.0)
        assert a.overlap_fraction(b) == pytest.approx(0.5)
        assert a.overlap_fraction(BoundingBox(5.0, 5.0, 6.0, 6.0)) == 0.0

    def test_min_distance_to_point(self):
        box = BoundingBox(0.0, 0.0, 1.0, 1.0)
        assert box.min_distance_to_point(0.5, 0.5) == 0.0
        assert box.min_distance_to_point(2.0, 0.5) == pytest.approx(1.0)
        assert box.min_distance_to_point(4.0, 5.0) == pytest.approx(5.0)

    def test_expanded(self):
        assert BoundingBox(0.0, 0.0, 1.0, 1.0).expanded(0.5) == BoundingBox(
            -0.5, -0.5, 1.5, 1.5
        )

    def test_clipped_to(self):
        frame = BoundingBox(0.0, 0.0, 1.0, 1.0)
        box = BoundingBox(0.5, -0.5, 1.5, 0.5)
        assert box.clipped_to(frame) == BoundingBox(0.5, 0.0, 1.0, 0.5)
        with pytest.raises(ValueError):
            BoundingBox(2.0, 2.0, 3.0, 3.0).clipped_to(frame)

    @given(boxes(), boxes())
    def test_intersection_inside_both(self, a, b):
        inter = a.intersection(b)
        if inter is not None:
            assert a.contains_box(inter)
            assert b.contains_box(inter)

    @given(boxes(), boxes())
    def test_union_contains_both(self, a, b):
        u = a.union(b)
        assert u.contains_box(a)
        assert u.contains_box(b)


class TestNavigationGeometry:
    def test_zoom_in_keeps_center(self):
        box = BoundingBox(0.0, 0.0, 2.0, 2.0)
        inner = box.zoomed_in(0.5)
        assert inner.center == box.center
        assert inner.width == pytest.approx(1.0)
        assert box.contains_box(inner)

    def test_zoom_out_keeps_center(self):
        box = BoundingBox(0.0, 0.0, 2.0, 2.0)
        outer = box.zoomed_out(2.0)
        assert outer.center == box.center
        assert outer.width == pytest.approx(4.0)
        assert outer.contains_box(box)

    def test_zoom_in_rejects_bad_scale(self):
        box = BoundingBox.unit()
        for scale in (0.0, 1.0, 1.5, -0.5):
            with pytest.raises(ValueError):
                box.zoomed_in(scale)

    def test_zoom_out_rejects_bad_scale(self):
        box = BoundingBox.unit()
        for scale in (0.0, 0.5, 1.0, -2.0):
            with pytest.raises(ValueError):
                box.zoomed_out(scale)

    def test_zoom_roundtrip(self):
        box = BoundingBox(0.1, 0.2, 0.5, 0.6)
        back = box.zoomed_in(0.5).zoomed_out(2.0)
        for got, want in zip(back, box):
            assert got == pytest.approx(want)

    def test_panned(self):
        box = BoundingBox(0.0, 0.0, 1.0, 1.0)
        moved = box.panned(0.25, -0.5)
        assert moved == BoundingBox(0.25, -0.5, 1.25, 0.5)
        assert moved.width == box.width and moved.height == box.height

    def test_pan_union_covers_all_overlapping_pans(self):
        box = BoundingBox(0.0, 0.0, 1.0, 1.0)
        union = box.pan_union()
        # Extreme overlapping pans (just touching) stay inside rA.
        for dx, dy in [(1.0, 0.0), (-1.0, 0.0), (0.0, 1.0), (1.0, 1.0)]:
            assert union.contains_box(box.panned(dx, dy))

    def test_zoom_out_union(self):
        box = BoundingBox(0.0, 0.0, 1.0, 1.0)
        union = box.zoom_out_union(4.0)
        for scale in (1.5, 2.0, 4.0):
            assert union.contains_box(box.zoomed_out(scale))
