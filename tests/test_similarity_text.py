"""Tests for the text pipeline and text similarity models."""

import numpy as np
import pytest

from repro.similarity import (
    CosineTextSimilarity,
    JaccardSimilarity,
    TfidfVectorizer,
    Tokenizer,
    Vocabulary,
)

CORPUS = [
    "great italian pizza and pasta place",
    "pizza pasta italian restaurant",
    "modern art gallery with sculpture",
    "contemporary art museum sculpture exhibits",
    "quiet riverside park",
    "",
]


class TestTokenizer:
    def test_lowercases_and_splits(self):
        toks = Tokenizer().tokenize("Hello WORLD, code-review!")
        assert toks == ["hello", "world", "code", "review"]

    def test_removes_stopwords(self):
        toks = Tokenizer().tokenize("the quick and the dead")
        assert "the" not in toks and "and" not in toks
        assert toks == ["quick", "dead"]

    def test_keeps_numbers_and_apostrophes(self):
        toks = Tokenizer().tokenize("route 66 ain't bad")
        assert "66" in toks and "ain't" in toks

    def test_empty_string(self):
        assert Tokenizer().tokenize("") == []

    def test_custom_stopwords(self):
        tok = Tokenizer(stopwords=frozenset({"pizza"}))
        assert tok.tokenize("pizza place") == ["place"]


class TestVocabulary:
    def test_stable_ids(self):
        vocab = Vocabulary()
        a = vocab.add("apple")
        b = vocab.add("banana")
        assert vocab.add("apple") == a
        assert vocab.get("banana") == b
        assert vocab.get("cherry") is None

    def test_roundtrip(self):
        vocab = Vocabulary()
        for word in ("x", "y", "z"):
            vocab.add(word)
        assert [vocab.token(i) for i in range(3)] == ["x", "y", "z"]
        assert len(vocab) == 3
        assert "y" in vocab


class TestTfidfVectorizer:
    def test_shapes(self):
        vec = TfidfVectorizer()
        matrix = vec.fit_transform(CORPUS)
        assert matrix.shape[0] == len(CORPUS)
        assert matrix.shape[1] == len(vec.vocabulary)

    def test_rows_l2_normalized(self):
        matrix = TfidfVectorizer().fit_transform(CORPUS)
        norms = np.sqrt(np.asarray(matrix.multiply(matrix).sum(axis=1))).ravel()
        for row, norm in enumerate(norms):
            if CORPUS[row].strip():
                assert norm == pytest.approx(1.0)
            else:
                assert norm == 0.0

    def test_min_df_filters_rare_terms(self):
        vec = TfidfVectorizer(min_df=2)
        vec.fit_transform(CORPUS)
        assert vec.vocabulary.get("pizza") is not None  # appears twice
        assert vec.vocabulary.get("riverside") is None  # appears once

    def test_transform_requires_fit(self):
        with pytest.raises(RuntimeError):
            TfidfVectorizer().transform(["hello"])

    def test_transform_uses_fitted_vocab(self):
        vec = TfidfVectorizer()
        vec.fit_transform(CORPUS)
        out = vec.transform(["pizza pizza unseenword"])
        assert out.shape == (1, len(vec.vocabulary))
        assert out[0, vec.vocabulary.get("pizza")] > 0

    def test_min_df_validation(self):
        with pytest.raises(ValueError):
            TfidfVectorizer(min_df=0)

    def test_deterministic(self):
        m1 = TfidfVectorizer().fit_transform(CORPUS)
        m2 = TfidfVectorizer().fit_transform(CORPUS)
        assert (m1 != m2).nnz == 0


class TestCosineTextSimilarity:
    @pytest.fixture
    def model(self):
        return CosineTextSimilarity.from_texts(CORPUS)

    def test_protocol_contract(self, model):
        assert len(model) == len(CORPUS)
        ids = np.arange(len(CORPUS))
        for i in range(len(CORPUS)):
            sims = model.sims_to(i, ids)
            assert sims[i] == pytest.approx(1.0)  # self-similarity
            assert sims.min() >= 0.0 and sims.max() <= 1.0

    def test_symmetry(self, model):
        for i in range(len(CORPUS)):
            for j in range(len(CORPUS)):
                assert model.sim(i, j) == pytest.approx(model.sim(j, i))

    def test_topical_structure(self, model):
        # Pizza docs are similar to each other, dissimilar to art docs.
        assert model.sim(0, 1) > 0.3
        assert model.sim(2, 3) > 0.3
        assert model.sim(0, 2) < model.sim(0, 1)

    def test_empty_doc_self_similarity_forced(self, model):
        empty = len(CORPUS) - 1
        assert model.sim(empty, empty) == 1.0
        assert model.sims_to(empty, np.array([empty]))[0] == 1.0
        assert model.sim(empty, 0) == 0.0

    def test_sims_to_matches_scalar(self, model):
        ids = np.arange(len(CORPUS))
        for i in range(len(CORPUS)):
            got = model.sims_to(i, ids)
            want = [model.sim(i, int(j)) for j in ids]
            assert got == pytest.approx(want)

    def test_row_kernel_matches_sims_to(self, model):
        ids = np.array([0, 2, 4, 5])
        kernel = model.row_kernel(ids)
        for v in range(len(CORPUS)):
            assert kernel(v) == pytest.approx(model.sims_to(v, ids))

    def test_weighted_sims_sum_matches_loop(self, model):
        ids = np.arange(len(CORPUS))
        weights = np.linspace(0.1, 1.0, len(CORPUS))
        got = model.weighted_sims_sum(ids, ids, weights)
        want = [float(np.dot(weights, model.sims_to(i, ids))) for i in ids]
        assert got == pytest.approx(want)

    def test_weighted_sims_sum_empty_doc_correction(self, model):
        # The empty doc contributes weight * 1 to itself via the forced
        # self-similarity, which the plain dot product would miss.
        ids = np.arange(len(CORPUS))
        weights = np.ones(len(CORPUS))
        empty = len(CORPUS) - 1
        got = model.weighted_sims_sum(np.array([empty]), ids, weights)[0]
        assert got == pytest.approx(1.0)


class TestJaccardSimilarity:
    @pytest.fixture
    def model(self):
        return JaccardSimilarity([{0, 1, 2}, {1, 2, 3}, {7}, set()])

    def test_known_values(self, model):
        assert model.sim(0, 1) == pytest.approx(2.0 / 4.0)
        assert model.sim(0, 2) == 0.0
        assert model.sim(0, 0) == 1.0

    def test_empty_set_similarity(self, model):
        assert model.sim(3, 3) == 1.0  # forced self-similarity
        assert model.sim(3, 0) == 0.0

    def test_sims_to_matches_scalar(self, model):
        ids = np.arange(4)
        for i in range(4):
            assert model.sims_to(i, ids) == pytest.approx(
                [model.sim(i, int(j)) for j in ids]
            )

    def test_negative_keyword_rejected(self):
        with pytest.raises(ValueError):
            JaccardSimilarity([{-1, 2}])
