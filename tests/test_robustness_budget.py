"""Deadline/Budget primitives and the anytime greedy."""

import numpy as np
import pytest

from repro import Budget, Deadline, GeoDataset, RegionQuery, greedy_select
from repro.core.greedy import greedy_core
from repro.geo import BoundingBox
from repro.geo.distance import pairwise_min_distance
from repro.robustness import DeadlineExceeded

WHOLE = BoundingBox(-0.1, -0.1, 1.1, 1.1)


@pytest.fixture
def dataset():
    gen = np.random.default_rng(42)
    return GeoDataset.build(gen.random(800), gen.random(800))


class TestDeadline:
    def test_after_and_remaining(self):
        dl = Deadline.after(60.0)
        assert not dl.expired()
        assert 0.0 < dl.remaining() <= 60.0

    def test_expired(self):
        dl = Deadline(expires_at=0.0)  # epoch of the monotonic clock
        assert dl.expired()
        assert dl.remaining() < 0.0

    def test_never(self):
        dl = Deadline.never()
        assert not dl.expired()
        assert dl.remaining() == float("inf")

    def test_check_raises(self):
        with pytest.raises(DeadlineExceeded):
            Deadline(expires_at=0.0).check("unit test")
        Deadline.never().check("unit test")  # no raise

    def test_validation(self):
        with pytest.raises(ValueError):
            Deadline.after(0.0)
        with pytest.raises(ValueError):
            Deadline.after(-1.0)


class TestBudget:
    def test_no_limits_never_exhausts(self):
        budget = Budget()
        for i in range(1000):
            assert budget.tick()
        assert budget.exhausted(999) is None

    def test_max_iterations(self):
        budget = Budget(max_iterations=3)
        assert budget.exhausted(2) is None
        assert budget.exhausted(3) == "max_iterations"
        # Exhaustion is sticky: later calls repeat the verdict.
        assert budget.exhausted(0) == "max_iterations"
        assert not budget.tick()

    def test_deadline_exhaustion_via_tick(self):
        budget = Budget(deadline=Deadline(expires_at=0.0), check_stride=4)
        # Strided: the first three ticks never consult the clock.
        assert budget.tick()
        assert budget.tick()
        assert budget.tick()
        assert not budget.tick()
        assert budget.exhausted_reason == "deadline"

    def test_exhausted_checks_clock_immediately(self):
        budget = Budget(deadline=Deadline(expires_at=0.0))
        assert budget.exhausted(0) == "deadline"

    def test_validation(self):
        with pytest.raises(ValueError):
            Budget(max_iterations=-1)
        with pytest.raises(ValueError):
            Budget(check_stride=0)


class TestAnytimeGreedy:
    def test_iteration_cap_returns_prefix_of_full_run(self, dataset):
        query = RegionQuery(region=WHOLE, k=20, theta=0.01)
        full = greedy_select(dataset, query)
        capped = greedy_select(dataset, query, budget=Budget(max_iterations=7))
        assert len(capped) == 7
        assert capped.degraded
        assert capped.stats["budget_exhausted"] == "max_iterations"
        assert capped.stats["short_selection"]
        # Anytime property: the prefix matches the unbudgeted pick order.
        assert capped.selected.tolist() == full.selected.tolist()[:7]

    def test_prefix_is_theta_feasible(self, dataset):
        query = RegionQuery(region=WHOLE, k=20, theta=0.02)
        capped = greedy_select(dataset, query, budget=Budget(max_iterations=5))
        sel = capped.selected
        assert pairwise_min_distance(
            dataset.xs[sel], dataset.ys[sel]
        ) >= 0.02

    def test_expired_deadline_returns_immediately(self, dataset):
        query = RegionQuery(region=WHOLE, k=20, theta=0.01)
        budget = Budget(deadline=Deadline(expires_at=0.0), check_stride=1)
        result = greedy_select(dataset, query, budget=budget)
        assert result.degraded
        assert result.stats["budget_exhausted"] == "deadline"
        assert len(result) < 20
        # Almost no gain evaluations: the init sweep stopped at the
        # first strided clock check.
        assert result.stats["gain_evaluations"] <= 1

    def test_generous_budget_is_invisible(self, dataset):
        query = RegionQuery(region=WHOLE, k=15, theta=0.01)
        plain = greedy_select(dataset, query)
        budgeted = greedy_select(
            dataset, query, budget=Budget.from_seconds(3600.0)
        )
        assert not budgeted.degraded
        assert budgeted.stats["budget_exhausted"] is None
        assert budgeted.selected.tolist() == plain.selected.tolist()
        assert budgeted.score == pytest.approx(plain.score)

    def test_mandatory_prefix_survives_expiry(self, dataset):
        region_ids = dataset.objects_in(WHOLE)
        mandatory = region_ids[:3]
        result = greedy_core(
            dataset,
            region_ids=region_ids,
            candidate_ids=np.setdiff1d(region_ids, mandatory),
            mandatory_ids=mandatory,
            k=10,
            theta=0.0,
            budget=Budget(deadline=Deadline(expires_at=0.0), check_stride=1),
        )
        assert result.degraded
        # The mandatory seed is always part of the anytime prefix.
        assert result.selected.tolist()[:3] == [int(i) for i in mandatory]

    def test_bulk_init_respects_budget(self, dataset):
        query = RegionQuery(region=WHOLE, k=10, theta=0.01)
        budget = Budget(deadline=Deadline(expires_at=0.0), check_stride=1)
        result = greedy_select(
            dataset, query, init_mode="bulk", budget=budget
        )
        assert result.degraded
        assert len(result) == 0
