"""Tests for the brute-force exact SOS solver."""

import numpy as np
import pytest

from repro import GeoDataset, RegionQuery, exact_select, representative_score
from repro.geo import BoundingBox
from repro.geo.distance import pairwise_min_distance
from repro.similarity import MatrixSimilarity

WHOLE = BoundingBox(-0.1, -0.1, 1.1, 1.1)


def dataset(n: int, seed: int) -> GeoDataset:
    gen = np.random.default_rng(seed)
    return GeoDataset.build(
        gen.random(n), gen.random(n),
        weights=gen.random(n),
        similarity=MatrixSimilarity.random(n, gen),
    )


class TestExactSolver:
    def test_population_guard(self):
        ds = dataset(80, 0)
        query = RegionQuery(region=WHOLE, k=3, theta=0.0)
        with pytest.raises(ValueError, match="limited"):
            exact_select(ds, query, max_population=64)

    def test_beats_every_feasible_subset(self):
        ds = dataset(9, 1)
        query = RegionQuery(region=WHOLE, k=3, theta=0.1)
        result = exact_select(ds, query)
        # Exhaustively verify optimality over all feasible <=k subsets.
        from itertools import combinations

        ids = np.arange(9)
        best = 0.0
        for size in range(1, 4):
            for combo in combinations(range(9), size):
                sel = np.array(combo)
                if pairwise_min_distance(ds.xs[sel], ds.ys[sel]) < query.theta:
                    continue
                best = max(best, representative_score(ds, ids, sel))
        assert result.score == pytest.approx(best)

    def test_respects_visibility(self):
        ds = dataset(10, 2)
        query = RegionQuery(region=WHOLE, k=4, theta=0.3)
        result = exact_select(ds, query)
        sel = result.selected
        if len(sel) >= 2:
            assert pairwise_min_distance(ds.xs[sel], ds.ys[sel]) >= query.theta

    def test_selects_fewer_when_theta_binds(self):
        xs = np.array([0.0, 0.01, 0.02])
        ys = np.zeros(3)
        ds = GeoDataset.build(xs, ys)
        query = RegionQuery(region=WHOLE, k=3, theta=0.5)
        result = exact_select(ds, query)
        assert len(result) == 1

    def test_empty_region(self):
        ds = dataset(5, 3)
        query = RegionQuery(
            region=BoundingBox(5.0, 5.0, 6.0, 6.0), k=2, theta=0.0
        )
        result = exact_select(ds, query)
        assert len(result) == 0
        assert result.score == 0.0

    def test_k_one_picks_max_mass(self):
        ds = dataset(8, 4)
        query = RegionQuery(region=WHOLE, k=1, theta=0.0)
        result = exact_select(ds, query)
        ids = np.arange(8)
        masses = [representative_score(ds, ids, np.array([i])) for i in ids]
        assert result.score == pytest.approx(max(masses))
