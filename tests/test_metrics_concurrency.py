"""Thread-safety of the metrics registry.

One registry is shared between the session's response path, the
WorkerPool's thread backend, and traced spans finishing on worker
threads; counter increments (read-modify-write) and observation
appends must not lose updates under that concurrency.
"""

import threading
from concurrent.futures import ThreadPoolExecutor

import numpy as np

from repro import GeoDataset, MetricsRegistry
from repro.parallel import WorkerPool

THREADS = 8
ROUNDS = 500


class TestConcurrentCounters:
    def test_increments_are_exact(self):
        metrics = MetricsRegistry()
        barrier = threading.Barrier(THREADS)

        def work(_):
            barrier.wait()
            for _ in range(ROUNDS):
                metrics.incr("shared")
                metrics.incr("weighted", 0.5)

        with ThreadPoolExecutor(max_workers=THREADS) as pool:
            list(pool.map(work, range(THREADS)))
        assert metrics.count("shared") == THREADS * ROUNDS
        assert metrics.count("weighted") == THREADS * ROUNDS * 0.5

    def test_observations_are_all_kept(self):
        metrics = MetricsRegistry()
        barrier = threading.Barrier(THREADS)

        def work(i):
            barrier.wait()
            for j in range(ROUNDS):
                metrics.observe("latency", i + j / ROUNDS)

        with ThreadPoolExecutor(max_workers=THREADS) as pool:
            list(pool.map(work, range(THREADS)))
        samples = metrics.observations("latency")
        assert len(samples) == THREADS * ROUNDS
        summary = metrics.summary("latency")
        assert summary["count"] == THREADS * ROUNDS
        assert summary["max"] <= THREADS - 1 + 1.0

    def test_readers_run_against_writers(self):
        """snapshot/summary/format racing incr/observe: no lost
        updates, no exceptions from mutating-dict iteration."""
        metrics = MetricsRegistry()
        stop = threading.Event()
        errors = []

        def read():
            try:
                while not stop.is_set():
                    metrics.snapshot()
                    metrics.summary("obs")
                    metrics.format()
                    metrics.delta_since({})
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        readers = [threading.Thread(target=read) for _ in range(2)]
        for t in readers:
            t.start()
        try:
            with ThreadPoolExecutor(max_workers=THREADS) as pool:
                def write(i):
                    for _ in range(ROUNDS):
                        metrics.incr(f"counter.{i % 3}")
                        metrics.observe("obs", 0.001)
                list(pool.map(write, range(THREADS)))
        finally:
            stop.set()
            for t in readers:
                t.join()
        assert not errors
        total = sum(metrics.snapshot().values())
        assert total == THREADS * ROUNDS
        assert len(metrics.observations("obs")) == THREADS * ROUNDS

    def test_reset_is_atomic_under_writers(self):
        metrics = MetricsRegistry()

        def write(_):
            for _ in range(100):
                metrics.incr("c")
                metrics.observe("o", 1.0)

        with ThreadPoolExecutor(max_workers=4) as pool:
            futures = pool.map(write, range(4))
            metrics.reset()
            list(futures)
        # Whatever survived the reset must be internally consistent.
        assert metrics.count("c") <= 400
        assert len(metrics.observations("o")) <= 400


class TestWorkerPoolUpdates:
    def test_thread_backend_fanout_counts_exactly(self):
        """run_all thunks on the thread backend hammer one registry;
        totals must equal the serial ground truth."""
        metrics = MetricsRegistry()
        pool = WorkerPool(workers=THREADS, backend="thread", metrics=metrics)
        try:
            def thunk():
                for _ in range(200):
                    metrics.incr("work.units")
                    metrics.observe("work.seconds", 0.0001)
                return True

            n_tasks = 32
            outcomes = pool.run_all([thunk] * n_tasks)
        finally:
            pool.close()
        assert all(r is True and e is None for r, e in outcomes)
        assert metrics.count("work.units") == n_tasks * 200
        assert len(metrics.observations("work.seconds")) == n_tasks * 200
        # The pool's own bookkeeping is on the same registry.
        assert metrics.count("parallel.tasks") == n_tasks
        assert metrics.count("parallel.fanouts") == 1

    def test_parallel_gain_sweep_metrics_match_serial(self):
        """The deterministic-counters contract: a sharded sweep must
        report exactly the counters of the serial sweep."""
        from repro.core.scoring import MarginalGainState

        gen = np.random.default_rng(9)
        dataset = GeoDataset.build(gen.random(300), gen.random(300))
        ids = np.arange(300, dtype=np.int64)
        blocks = [b for b in np.array_split(ids, 8) if len(b)]

        def sweep(workers, backend):
            metrics = MetricsRegistry()
            state = MarginalGainState(dataset, ids)
            pool = WorkerPool(
                workers=workers, backend=backend,
                similarity=dataset.similarity, metrics=metrics,
            )
            try:
                results = pool.gain_sweep(state, blocks)
            finally:
                pool.close()
            return results, state, metrics

        serial_results, serial_state, _ = sweep(0, "serial")
        thread_results, thread_state, thread_metrics = sweep(
            THREADS, "thread"
        )
        for a, b in zip(serial_results, thread_results):
            assert np.array_equal(a, b)
        # Counter bookkeeping is applied once, post-sweep, so totals
        # are identical at any worker count.
        assert (
            thread_state.gain_evaluations == serial_state.gain_evaluations
        )
        assert thread_metrics.count("parallel.blocks") == len(blocks)
