"""End-to-end integration tests gluing the whole pipeline together.

These walk the realistic user journey across module boundaries:
generate → persist → reload → query → select → navigate → explore →
render, asserting cross-module invariants at each step.
"""

import numpy as np
import pytest

from repro import (
    MapSession,
    RegionQuery,
    greedy_select,
    representative_score,
    represented_objects,
    sass_select,
)
from repro.datasets import (
    DatasetSpec,
    generate_clustered,
    load_jsonl,
    random_navigation_trace,
    random_region_queries,
    save_jsonl,
)
from repro.geo.distance import pairwise_min_distance
from repro.viz import render_ascii, render_svg


@pytest.fixture(scope="module")
def corpus():
    return generate_clustered(
        DatasetSpec(
            name="integration", n=4000, n_clusters=5,
            duplicate_fraction=0.3, seed=77,
        )
    )


class TestFullPipeline:
    def test_generate_persist_reload_select(self, corpus, tmp_path):
        path = tmp_path / "corpus.jsonl"
        save_jsonl(corpus, path)
        reloaded = load_jsonl(path)

        (query,) = random_region_queries(
            reloaded, 1, region_fraction=0.3, k=15,
            rng=np.random.default_rng(0), min_population=100,
        )
        result = greedy_select(reloaded, query)
        assert len(result) == 15
        sel = result.selected
        assert pairwise_min_distance(
            reloaded.xs[sel], reloaded.ys[sel]
        ) >= query.theta
        # Reloaded dataset reproduces the original's selection (same
        # objects, same texts -> same TF-IDF -> same greedy walk).
        original = greedy_select(corpus, query)
        assert result.selected.tolist() == original.selected.tolist()

    def test_navigate_and_explore(self, corpus):
        trace = random_navigation_trace(
            corpus, 5, region_fraction=0.3, rng=np.random.default_rng(3)
        )
        session = MapSession(corpus, k=10, theta_fraction=0.01, prefetch=True)
        steps = trace.replay(session)
        final = steps[-1]
        if len(final.result) == 0:
            pytest.skip("trace wandered into empty space")
        region_ids = corpus.objects_in(final.region)
        # Click-to-expand partitions the viewport population.
        covered = set(final.result.selected.tolist())
        for marker in final.result.selected:
            covered.update(
                represented_objects(
                    corpus, region_ids, final.result.selected, int(marker)
                ).tolist()
            )
        assert covered == set(region_ids.tolist())

    def test_sampled_selection_quality_on_pipeline(self, corpus):
        (query,) = random_region_queries(
            corpus, 1, region_fraction=0.5, k=20,
            rng=np.random.default_rng(5), min_population=1000,
        )
        full = greedy_select(corpus, query)
        sampled = sass_select(
            corpus, query, epsilon=0.05, rng=np.random.default_rng(6)
        )
        population = corpus.objects_in(query.region)
        full_quality = full.score
        sample_quality = representative_score(
            corpus, population, sampled.selected
        )
        # The sampled selection keeps most of the full greedy quality.
        assert sample_quality >= 0.7 * full_quality

    def test_render_both_backends(self, corpus, tmp_path):
        (query,) = random_region_queries(
            corpus, 1, region_fraction=0.3, k=8,
            rng=np.random.default_rng(8), min_population=50,
        )
        result = greedy_select(corpus, query)
        ascii_map = render_ascii(
            corpus, query.region, selected=result.selected,
            width=40, height=12,
        )
        assert "#" in ascii_map
        svg = render_svg(
            corpus, query.region, selected=result.selected,
            path=tmp_path / "map.svg",
        )
        assert (tmp_path / "map.svg").exists()
        assert svg.count('fill="#d33"') == len(result)

    def test_weights_steer_selection(self):
        """Heavier objects are likelier to be represented: two identical
        duplicate groups, one heavy and one light — with k=1 the greedy
        must represent the heavy one."""
        from repro import GeoDataset

        texts = ["alpha event"] * 10 + ["beta festival"] * 10
        xs = np.array([0.2] * 10 + [0.8] * 10)
        ys = np.array([0.2] * 10 + [0.8] * 10)
        weights = np.array([1.0] * 10 + [0.05] * 10)
        ds = GeoDataset.build(xs, ys, weights=weights, texts=texts)
        from repro.geo import BoundingBox

        query = RegionQuery(
            region=BoundingBox(0.0, 0.0, 1.0, 1.0), k=1, theta=0.0
        )
        result = greedy_select(ds, query)
        assert int(result.selected[0]) < 10  # the heavy group
