"""Tests for the synthetic dataset substrate (generators, vocab, loaders)."""

import numpy as np
import pytest

from repro.datasets import (
    DatasetSpec,
    TopicModel,
    generate_clustered,
    load_csv,
    load_jsonl,
    make_vocabulary,
    save_csv,
    save_jsonl,
    sg_pois,
    uk_tweets,
    us_tweets,
)
from repro.datasets.vocab import zipf_weights


class TestVocabulary:
    def test_distinct_words(self):
        words = make_vocabulary(500, np.random.default_rng(0))
        assert len(words) == 500
        assert len(set(words)) == 500

    def test_deterministic(self):
        a = make_vocabulary(100, np.random.default_rng(5))
        b = make_vocabulary(100, np.random.default_rng(5))
        assert a == b

    def test_zipf_weights_normalized_and_decreasing(self):
        w = zipf_weights(50)
        assert w.sum() == pytest.approx(1.0)
        assert all(w[i] >= w[i + 1] for i in range(49))


class TestTopicModel:
    @pytest.fixture
    def model(self):
        return TopicModel(
            n_topics=3, vocab_size=1000, topic_words=100,
            common_words=200, rng=np.random.default_rng(1),
        )

    def test_validation(self):
        with pytest.raises(ValueError, match="too small"):
            TopicModel(n_topics=10, vocab_size=100, topic_words=50,
                       common_words=50)
        with pytest.raises(ValueError, match="at least one topic"):
            TopicModel(n_topics=0)
        with pytest.raises(ValueError, match="common_prob"):
            TopicModel(n_topics=1, common_prob=1.5)

    def test_text_length(self, model):
        rng = np.random.default_rng(2)
        text = model.sample_text(0, 8, rng)
        assert len(text.split()) == 8

    def test_topic_out_of_range(self, model):
        with pytest.raises(ValueError):
            model.sample_text(5, 4, np.random.default_rng(0))

    def test_same_topic_texts_share_vocabulary(self, model):
        rng = np.random.default_rng(3)
        docs_a = " ".join(model.sample_text(0, 50, rng) for _ in range(5))
        docs_b = " ".join(model.sample_text(0, 50, rng) for _ in range(5))
        docs_c = " ".join(model.sample_text(1, 50, rng) for _ in range(5))
        a, b, c = set(docs_a.split()), set(docs_b.split()), set(docs_c.split())

        def jaccard(x, y):
            return len(x & y) / len(x | y)

        assert jaccard(a, b) > jaccard(a, c)

    def test_sample_texts_alignment(self, model):
        rng = np.random.default_rng(4)
        with pytest.raises(ValueError):
            model.sample_texts(np.array([0, 1]), np.array([3]), rng)
        texts = model.sample_texts(
            np.array([0, 1, 2]), np.array([3, 4, 5]), rng
        )
        assert [len(t.split()) for t in texts] == [3, 4, 5]


class TestGenerators:
    def test_spec_validation(self):
        with pytest.raises(ValueError):
            DatasetSpec(name="x", n=0, n_clusters=3)
        with pytest.raises(ValueError):
            DatasetSpec(name="x", n=10, n_clusters=0)
        with pytest.raises(ValueError):
            DatasetSpec(name="x", n=10, n_clusters=1, cluster_fraction=1.5)

    def test_size_and_frame(self):
        ds = generate_clustered(
            DatasetSpec(name="t", n=3000, n_clusters=5, seed=1)
        )
        assert len(ds) == 3000
        assert ds.xs.min() >= 0.0 and ds.xs.max() <= 1.0
        assert ds.ys.min() >= 0.0 and ds.ys.max() <= 1.0
        assert ds.weights.min() >= 0.0 and ds.weights.max() <= 1.0

    def test_deterministic_under_seed(self):
        spec = DatasetSpec(name="t", n=1000, n_clusters=3, seed=42)
        a = generate_clustered(spec)
        b = generate_clustered(spec)
        assert np.array_equal(a.xs, b.xs)
        assert a.texts == b.texts

    def test_different_seeds_differ(self):
        a = generate_clustered(DatasetSpec(name="t", n=500, n_clusters=3, seed=1))
        b = generate_clustered(DatasetSpec(name="t", n=500, n_clusters=3, seed=2))
        assert not np.array_equal(a.xs, b.xs)

    def test_clustered_data_is_skewed(self):
        """Density skew: some small regions are far denser than uniform."""
        ds = generate_clustered(
            DatasetSpec(name="t", n=5000, n_clusters=4,
                        cluster_fraction=0.9, seed=7),
            with_texts=False,
        )
        from repro.geo import BoundingBox

        counts = []
        for x0 in np.linspace(0, 0.9, 10):
            for y0 in np.linspace(0, 0.9, 10):
                counts.append(
                    ds.index.count_region(BoundingBox(x0, y0, x0 + 0.1, y0 + 0.1))
                )
        counts = np.array(counts)
        # A uniform layout has max/mean ~ 1.5; clusters push it way up.
        assert counts.max() / max(counts.mean(), 1) > 3.0

    def test_without_texts_uses_euclidean(self):
        from repro.similarity import EuclideanSimilarity

        ds = generate_clustered(
            DatasetSpec(name="t", n=200, n_clusters=2, seed=3),
            with_texts=False,
        )
        assert ds.texts is None
        assert isinstance(ds.similarity, EuclideanSimilarity)

    def test_named_presets(self):
        for factory in (uk_tweets, us_tweets, sg_pois):
            ds = factory(n=2000)
            assert len(ds) == 2000
            assert ds.texts is not None
            assert len(ds.meta["topics"]) == 2000

    def test_scale_env_hook(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "0.01")
        ds = uk_tweets()
        assert len(ds) < 10_000  # 120k default scaled down


class TestLoaders:
    def test_roundtrip_with_texts(self, tmp_path):
        ds = generate_clustered(
            DatasetSpec(name="t", n=150, n_clusters=2, seed=5)
        )
        path = tmp_path / "corpus.jsonl"
        save_jsonl(ds, path)
        back = load_jsonl(path)
        assert len(back) == len(ds)
        assert np.allclose(back.xs, ds.xs)
        assert np.allclose(back.weights, ds.weights)
        assert back.texts == ds.texts

    def test_roundtrip_without_texts(self, tmp_path):
        ds = generate_clustered(
            DatasetSpec(name="t", n=80, n_clusters=2, seed=6),
            with_texts=False,
        )
        path = tmp_path / "plain.jsonl"
        save_jsonl(ds, path)
        back = load_jsonl(path)
        assert back.texts is None
        assert np.allclose(back.ys, ds.ys)

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "gaps.jsonl"
        path.write_text('{"x": 0.1, "y": 0.2}\n\n{"x": 0.3, "y": 0.4}\n')
        back = load_jsonl(path)
        assert len(back) == 2
        assert back.weights.tolist() == [1.0, 1.0]

    def test_invalid_json_reported_with_line(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"x": 0.1, "y": 0.2}\nnot json\n')
        with pytest.raises(ValueError, match="bad.jsonl:2"):
            load_jsonl(path)

    def test_missing_coordinate_reported(self, tmp_path):
        path = tmp_path / "short.jsonl"
        path.write_text('{"x": 0.1}\n')
        with pytest.raises(ValueError, match="missing coordinate"):
            load_jsonl(path)


class TestCsvLoaders:
    def test_roundtrip_with_texts(self, tmp_path):
        ds = generate_clustered(
            DatasetSpec(name="t", n=120, n_clusters=2, seed=8)
        )
        path = tmp_path / "corpus.csv"
        save_csv(ds, path)
        back = load_csv(path)
        assert len(back) == len(ds)
        assert np.allclose(back.xs, ds.xs)
        assert np.allclose(back.weights, ds.weights)
        assert back.texts == ds.texts

    def test_roundtrip_without_texts(self, tmp_path):
        ds = generate_clustered(
            DatasetSpec(name="t", n=60, n_clusters=2, seed=9),
            with_texts=False,
        )
        path = tmp_path / "plain.csv"
        save_csv(ds, path)
        back = load_csv(path)
        assert back.texts is None
        assert np.allclose(back.ys, ds.ys)

    def test_texts_with_commas_and_quotes(self, tmp_path):
        from repro import GeoDataset

        texts = ['cafe, "best" brunch', "plain text"]
        ds = GeoDataset.build(
            np.array([0.1, 0.9]), np.array([0.2, 0.8]), texts=texts
        )
        path = tmp_path / "quoted.csv"
        save_csv(ds, path)
        back = load_csv(path)
        assert back.texts == texts

    def test_missing_columns_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("a,b\n1,2\n")
        with pytest.raises(ValueError, match="columns"):
            load_csv(path)

    def test_invalid_coordinates_reported(self, tmp_path):
        path = tmp_path / "badcoord.csv"
        path.write_text("x,y\n0.1,nope-not-a-float-x\n")
        with pytest.raises(ValueError, match="badcoord.csv:2"):
            load_csv(path)

    def test_missing_weight_defaults_to_one(self, tmp_path):
        path = tmp_path / "noweight.csv"
        path.write_text("x,y\n0.1,0.2\n0.3,0.4\n")
        back = load_csv(path)
        assert back.weights.tolist() == [1.0, 1.0]
