"""R-tree-specific tests: structure invariants and incremental insert."""

import numpy as np
import pytest

from repro.geo import BoundingBox
from repro.index import LinearIndex, RTreeIndex


def random_points(n: int, seed: int) -> tuple[np.ndarray, np.ndarray]:
    gen = np.random.default_rng(seed)
    return gen.random(n), gen.random(n)


class TestBulkLoad:
    def test_invariants_after_bulk_load(self):
        xs, ys = random_points(2000, 1)
        tree = RTreeIndex(xs, ys)
        tree.check_invariants()

    def test_height_logarithmic(self):
        xs, ys = random_points(5000, 2)
        tree = RTreeIndex(xs, ys, fanout=16)
        # 5000 points at fanout 16: ceil(log_16(5000/16)) + 1 levels ≈ 4.
        assert 2 <= tree.height() <= 5

    def test_single_leaf_tree(self):
        xs, ys = random_points(10, 3)
        tree = RTreeIndex(xs, ys, fanout=32)
        assert tree.height() == 1
        tree.check_invariants()

    def test_fanout_validation(self):
        with pytest.raises(ValueError):
            RTreeIndex(np.array([0.0]), np.array([0.0]), fanout=3)

    def test_empty_tree(self):
        tree = RTreeIndex(np.array([]), np.array([]))
        assert tree.height() == 0
        tree.check_invariants()
        assert len(tree.query_region(BoundingBox.unit())) == 0


class TestInsert:
    def test_insert_into_empty(self):
        tree = RTreeIndex(np.array([]), np.array([]))
        new_id = tree.insert(0.5, 0.5)
        assert new_id == 0
        assert tree.query_region(BoundingBox.unit()).tolist() == [0]
        tree.check_invariants()

    def test_ids_stable_across_inserts(self):
        xs, ys = random_points(100, 4)
        tree = RTreeIndex(xs, ys)
        before = tree.query_region(BoundingBox(0.0, 0.0, 0.5, 0.5)).tolist()
        new_id = tree.insert(0.75, 0.75)
        assert new_id == 100
        after = tree.query_region(BoundingBox(0.0, 0.0, 0.5, 0.5)).tolist()
        assert before == after

    def test_many_inserts_match_linear(self):
        xs, ys = random_points(50, 5)
        tree = RTreeIndex(xs, ys, fanout=8)
        gen = np.random.default_rng(6)
        for _ in range(500):
            x, y = gen.random(2)
            tree.insert(float(x), float(y))
        tree.check_invariants()
        truth = LinearIndex(tree.xs, tree.ys)
        for _ in range(20):
            x1, x2 = sorted(gen.random(2))
            y1, y2 = sorted(gen.random(2))
            box = BoundingBox(x1, y1, x2, y2)
            assert tree.query_region(box).tolist() == (
                truth.query_region(box).tolist()
            )

    def test_inserts_only_tree(self):
        tree = RTreeIndex(np.array([]), np.array([]), fanout=4)
        gen = np.random.default_rng(7)
        for _ in range(200):
            tree.insert(float(gen.random()), float(gen.random()))
        tree.check_invariants()
        assert len(tree) == 200
        assert tree.query_region(
            BoundingBox(-1, -1, 2, 2)
        ).tolist() == list(range(200))

    def test_duplicate_inserts(self):
        tree = RTreeIndex(np.array([0.5]), np.array([0.5]), fanout=4)
        for _ in range(20):
            tree.insert(0.5, 0.5)
        tree.check_invariants()
        out = tree.query_region(BoundingBox(0.4, 0.4, 0.6, 0.6))
        assert len(out) == 21

    def test_root_split_grows_height(self):
        tree = RTreeIndex(np.array([]), np.array([]), fanout=4)
        gen = np.random.default_rng(8)
        heights = set()
        for _ in range(100):
            tree.insert(float(gen.random()), float(gen.random()))
            heights.add(tree.height())
        assert max(heights) >= 3  # the tree actually grew
        tree.check_invariants()
