"""Thread-safety of the prefetch circuit breaker.

The regression these tests pin down: the half-open state used to admit
every caller that read ``state == half_open`` before any of them
resolved, so a concurrent fan-out could race *several* probes through
a breaker that promises exactly one.  ``try_acquire`` makes admission
atomic — one probe ticket, everyone else rejected until it resolves.
"""

import threading
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.robustness import CircuitBreaker, CircuitOpen

THREADS = 16


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def advance(self, dt: float) -> None:
        self.now += dt

    def __call__(self) -> float:
        return self.now


def _tripped_breaker(clock) -> CircuitBreaker:
    breaker = CircuitBreaker(
        failure_threshold=3, reset_after_s=10.0, clock=clock
    )
    for _ in range(3):
        assert breaker.try_acquire()
        breaker.record_failure()
    assert breaker.state == "open"
    return breaker


class TestSingleProbe:
    def test_half_open_admits_exactly_one_probe(self):
        """16 barrier-synchronized threads hit a half-open breaker;
        exactly one may probe, the rest are rejected."""
        clock = FakeClock()
        breaker = _tripped_breaker(clock)
        clock.advance(10.0)  # cool-down elapsed -> half-open

        barrier = threading.Barrier(THREADS)
        admitted = []
        lock = threading.Lock()

        def contend(i):
            barrier.wait()
            ok = breaker.try_acquire()
            if ok:
                with lock:
                    admitted.append(i)
            return ok

        with ThreadPoolExecutor(max_workers=THREADS) as pool:
            outcomes = list(pool.map(contend, range(THREADS)))

        assert len(admitted) == 1
        assert sum(outcomes) == 1
        assert breaker.rejections == THREADS - 1
        # The probe is still unresolved: nobody else gets in.
        assert not breaker.allows()
        assert not breaker.try_acquire()

    def test_probe_success_closes_for_everyone(self):
        clock = FakeClock()
        breaker = _tripped_breaker(clock)
        clock.advance(10.0)
        assert breaker.try_acquire()  # the probe
        breaker.record_success()
        assert breaker.state == "closed"
        # Closed state admits concurrent callers freely again.
        with ThreadPoolExecutor(max_workers=THREADS) as pool:
            outcomes = list(
                pool.map(lambda _: breaker.try_acquire(), range(THREADS))
            )
        assert all(outcomes)

    def test_probe_failure_reopens_and_restarts_cooldown(self):
        clock = FakeClock()
        breaker = _tripped_breaker(clock)
        clock.advance(10.0)
        assert breaker.try_acquire()
        breaker.record_failure()
        assert breaker.state == "open"
        assert not breaker.try_acquire()
        # A fresh cool-down grants a fresh (single) probe.
        clock.advance(10.0)
        assert breaker.try_acquire()
        assert not breaker.try_acquire()

    def test_repeated_fanouts_never_duplicate_probes(self):
        """Many rounds of concurrent contention; every round, at most
        one admission while half-open."""
        clock = FakeClock()
        breaker = _tripped_breaker(clock)
        for _ in range(20):
            clock.advance(10.0)  # -> half-open
            barrier = threading.Barrier(THREADS)

            def contend(_):
                barrier.wait()
                return breaker.try_acquire()

            with ThreadPoolExecutor(max_workers=THREADS) as pool:
                outcomes = list(pool.map(contend, range(THREADS)))
            assert sum(outcomes) == 1
            breaker.record_failure()  # probe fails -> open again

    def test_concurrent_calls_trip_exactly_once(self):
        """Parallel failing calls: the trip happens at the threshold
        and the open breaker rejects the stragglers."""
        clock = FakeClock()
        breaker = CircuitBreaker(
            failure_threshold=5, reset_after_s=60.0, clock=clock
        )
        barrier = threading.Barrier(THREADS)

        def failing_call(_):
            barrier.wait()
            try:
                breaker.call(self._boom)
                return "success"
            except CircuitOpen:
                return "rejected"
            except RuntimeError:
                return "failed"

        with ThreadPoolExecutor(max_workers=THREADS) as pool:
            outcomes = list(pool.map(failing_call, range(THREADS)))

        assert breaker.state == "open"
        assert outcomes.count("success") == 0
        # Every admitted call recorded exactly one failure; admitted +
        # rejected must account for every thread.
        assert breaker.failures + breaker.rejections == THREADS
        assert breaker.failures >= breaker.failure_threshold
        assert outcomes.count("failed") == breaker.failures
        assert outcomes.count("rejected") == breaker.rejections

    @staticmethod
    def _boom():
        raise RuntimeError("injected")


class TestCounterIntegrity:
    def test_concurrent_successes_count_exactly(self):
        breaker = CircuitBreaker(failure_threshold=3, clock=FakeClock())
        rounds = 200

        def work(_):
            if breaker.try_acquire():
                breaker.record_success()

        with ThreadPoolExecutor(max_workers=8) as pool:
            list(pool.map(work, range(rounds)))
        assert breaker.successes == rounds
        assert breaker.state == "closed"

    def test_mixed_outcomes_keep_lifetime_totals(self):
        clock = FakeClock()
        breaker = CircuitBreaker(
            failure_threshold=10_000, clock=clock  # never trips
        )
        n = 400

        def work(i):
            assert breaker.try_acquire()
            if i % 3 == 0:
                breaker.record_failure()
            else:
                breaker.record_success()

        with ThreadPoolExecutor(max_workers=8) as pool:
            list(pool.map(work, range(n)))
        assert breaker.failures + breaker.successes == n
        assert breaker.failures == len([i for i in range(n) if i % 3 == 0])

    def test_allows_is_a_pure_peek(self):
        clock = FakeClock()
        breaker = _tripped_breaker(clock)
        clock.advance(10.0)
        # Peeking never takes the probe ticket.
        for _ in range(5):
            assert breaker.allows()
        assert breaker.try_acquire()
        assert not breaker.allows()


class TestSessionFanout:
    def test_session_prefetch_breaker_survives_concurrent_refresh(self):
        """A prefetch-enabled parallel session drives its breaker
        through a full trip/recover cycle without double probes."""
        import numpy as np

        from repro import FaultInjector, MapSession
        from repro.geo import BoundingBox
        from repro.robustness.faults import PREFETCH_COMPUTE

        gen = np.random.default_rng(3)
        from repro import GeoDataset

        dataset = GeoDataset.build(gen.random(300), gen.random(300))
        injector = FaultInjector().arm(PREFETCH_COMPUTE, max_fires=6)
        clock = FakeClock()
        breaker = CircuitBreaker(
            failure_threshold=3, reset_after_s=0.0, clock=clock
        )
        session = MapSession(
            dataset,
            k=6,
            prefetch=True,
            fault_injector=injector,
            breaker=breaker,
            workers=4,
            parallel_backend="thread",
        )
        try:
            session.start(BoundingBox(0.1, 0.1, 0.9, 0.9))
            for _ in range(4):
                session.pan(0.02, 0.0)
        finally:
            session.close()
        # All outcomes accounted for; counters are exact despite the
        # concurrent fan-out.
        assert breaker.failures == 6
        assert breaker.successes > 0
        # With reset_after_s=0 the breaker recovers; the last refresh
        # must have produced usable prefetch material again.
        assert session.prefetch_errors == {} or breaker.state != "open"
