"""CLI, baseline round-trip, and repo-gate tests for repro-lint."""

from __future__ import annotations

import json
import textwrap
from pathlib import Path

import pytest

from repro.analysis.baseline import (
    BaselineError,
    apply_baseline,
    load_baseline,
    write_baseline,
)
from repro.analysis.cli import main
from repro.analysis.engine import check_paths

REPO_ROOT = Path(__file__).resolve().parent.parent

# Private + annotated so the only violation is the RL002 clock read.
BAD_SOURCE = textwrap.dedent(
    """
    import time

    def _score() -> float:
        return time.perf_counter()
    """
)


@pytest.fixture
def bad_tree(tmp_path, monkeypatch):
    """A scan root containing one RL002 violation, cwd-relative paths."""
    monkeypatch.chdir(tmp_path)
    pkg = tmp_path / "src" / "repro" / "core"
    pkg.mkdir(parents=True)
    (pkg / "bad.py").write_text(BAD_SOURCE, encoding="utf-8")
    return tmp_path


class TestCheckCommand:
    def test_findings_exit_1_text(self, bad_tree, capsys):
        assert main(["check", "src"]) == 1
        out = capsys.readouterr()
        assert "RL002" in out.out
        assert "bad.py" in out.out
        assert "1 finding(s)" in out.err

    def test_clean_exit_0(self, bad_tree, capsys):
        (bad_tree / "src" / "repro" / "core" / "bad.py").write_text(
            "X: int = 1\n", encoding="utf-8"
        )
        assert main(["check", "src"]) == 0
        assert "0 finding(s)" in capsys.readouterr().err

    def test_json_format(self, bad_tree, capsys):
        assert main(["check", "src", "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert len(payload) == 1
        entry = payload[0]
        assert entry["rule"] == "RL002"
        assert entry["path"].endswith("bad.py")
        assert entry["line"] > 0

    def test_select_filters_rules(self, bad_tree):
        assert main(["check", "src", "--select", "RL002"]) == 1
        assert main(["check", "src", "--select", "RL001"]) == 0

    def test_ignore_filters_rules(self, bad_tree):
        assert main(["check", "src", "--ignore", "RL002"]) == 0

    def test_unknown_rule_exit_2(self, bad_tree, capsys):
        assert main(["check", "src", "--select", "RL999"]) == 2
        assert "unknown rule id" in capsys.readouterr().err

    def test_rules_subcommand(self, capsys):
        assert main(["rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("RL001", "RL002", "RL003", "RL004", "RL005", "RL006"):
            assert rule_id in out


class TestBaseline:
    def test_write_then_check_round_trip(self, bad_tree, capsys):
        assert main(["check", "src", "--write-baseline"]) == 0
        assert "wrote" in capsys.readouterr().out
        # The grandfathered finding no longer fails the gate...
        assert main(["check", "src"]) == 0
        assert "(1 baselined)" in capsys.readouterr().err
        # ...but --no-baseline still reports the full debt.
        assert main(["check", "src", "--no-baseline"]) == 1

    def test_baseline_survives_line_drift(self, bad_tree, capsys):
        assert main(["check", "src", "--write-baseline"]) == 0
        bad = bad_tree / "src" / "repro" / "core" / "bad.py"
        bad.write_text(
            "# leading comment pushes the violation down\n"
            + bad.read_text(encoding="utf-8"),
            encoding="utf-8",
        )
        capsys.readouterr()
        assert main(["check", "src"]) == 0

    def test_new_finding_escapes_baseline(self, bad_tree, capsys):
        assert main(["check", "src", "--write-baseline"]) == 0
        extra = bad_tree / "src" / "repro" / "core" / "worse.py"
        extra.write_text(
            "import random\n\ndef _j() -> float:\n    return random.random()\n",
            encoding="utf-8",
        )
        capsys.readouterr()
        assert main(["check", "src"]) == 1
        out = capsys.readouterr()
        assert "worse.py" in out.out
        assert "(1 baselined)" in out.err

    def test_malformed_baseline_exit_2(self, bad_tree, capsys):
        Path(".repro-lint-baseline.json").write_text("{not json", encoding="utf-8")
        assert main(["check", "src"]) == 2
        assert "unreadable baseline" in capsys.readouterr().err

    def test_wrong_version_exit_2(self, bad_tree, capsys):
        Path(".repro-lint-baseline.json").write_text(
            json.dumps({"version": 99, "entries": []}), encoding="utf-8"
        )
        assert main(["check", "src"]) == 2
        assert "version" in capsys.readouterr().err

    def test_explicit_baseline_path(self, bad_tree, tmp_path):
        baseline = tmp_path / "debt.json"
        assert main(
            ["check", "src", "--write-baseline", "--baseline", str(baseline)]
        ) == 0
        assert baseline.exists()
        assert main(["check", "src", "--baseline", str(baseline)]) == 0

    def test_api_round_trip(self, bad_tree, tmp_path):
        findings = check_paths([Path("src")])
        assert len(findings) == 1
        baseline = tmp_path / "debt.json"
        write_baseline(baseline, findings)
        exact, hashed = load_baseline(baseline)
        assert sum(exact.values()) == 1
        assert sum(hashed.values()) == 1
        new, matched = apply_baseline(findings, (exact, hashed))
        assert new == [] and matched == 1

    def test_load_rejects_garbage(self, tmp_path):
        garbage = tmp_path / "debt.json"
        garbage.write_text("[1, 2", encoding="utf-8")
        with pytest.raises(BaselineError):
            load_baseline(garbage)


class TestBaselineRenameStability:
    def test_renamed_file_stays_grandfathered(self, bad_tree, capsys):
        """Moving a file must not resurface its accepted debt: the
        exact (rule, path, text) key misses, but the path-free content
        hash still matches."""
        assert main(["check", "src", "--write-baseline"]) == 0
        pkg = bad_tree / "src" / "repro" / "core"
        (pkg / "bad.py").rename(pkg / "renamed.py")
        capsys.readouterr()
        assert main(["check", "src"]) == 0
        assert "(1 baselined)" in capsys.readouterr().err

    def test_touched_line_resurfaces_after_rename(self, bad_tree, capsys):
        """Editing the offending line changes its text, so neither the
        exact key nor the hash matches — the debt comes due."""
        assert main(["check", "src", "--write-baseline"]) == 0
        pkg = bad_tree / "src" / "repro" / "core"
        (pkg / "bad.py").rename(pkg / "renamed.py")
        moved = pkg / "renamed.py"
        moved.write_text(
            moved.read_text(encoding="utf-8").replace(
                "time.perf_counter()", "time.perf_counter() + 0.0"
            ),
            encoding="utf-8",
        )
        capsys.readouterr()
        assert main(["check", "src"]) == 1

    def test_rename_cannot_double_the_budget(self, bad_tree):
        """An exact match draws the hash pool down too: a second copy
        of the same offending line is new debt, not a free rename."""
        findings = check_paths([Path("src")])
        baseline = bad_tree / "debt.json"
        write_baseline(baseline, findings)
        twin = findings[0].__class__(**{
            **findings[0].__dict__, "path": "src/repro/core/copy.py",
        })
        new, matched = apply_baseline(
            findings + [twin], load_baseline(baseline)
        )
        assert matched == 1
        assert [f.path for f in new] == ["src/repro/core/copy.py"]

    def test_legacy_single_counter_still_applies(self, bad_tree):
        """Pre-hash callers passed a plain Counter of exact keys; the
        hash pool is derived so renames still match."""
        from collections import Counter

        findings = check_paths([Path("src")])
        accepted = Counter(f.key() for f in findings)
        moved = findings[0].__class__(**{
            **findings[0].__dict__, "path": "src/repro/core/moved.py",
        })
        new, matched = apply_baseline([moved], accepted)
        assert new == [] and matched == 1


class TestGithubFormat:
    def test_error_annotations(self, bad_tree, capsys):
        assert main(["check", "src", "--format", "github"]) == 1
        out = capsys.readouterr().out
        assert out.startswith("::error file=")
        assert "title=repro-lint RL002" in out
        assert "bad.py" in out

    def test_clean_run_emits_nothing(self, bad_tree, capsys):
        (bad_tree / "src" / "repro" / "core" / "bad.py").write_text(
            "X: int = 1\n", encoding="utf-8"
        )
        assert main(["check", "src", "--format", "github"]) == 0
        assert capsys.readouterr().out == ""

    def test_newlines_escaped(self):
        from repro.analysis.findings import Finding, format_github

        finding = Finding(
            rule="RL001", path="a.py", line=1, col=1,
            message="first\nsecond %", line_text="x",
        )
        line = format_github([finding])
        assert "\n" not in line
        assert "first%0Asecond %25" in line


ASYNC_BUG = textwrap.dedent(
    """
    import time

    async def _handler() -> None:
        time.sleep(0.1)
    """
)


class TestProjectMode:
    @pytest.fixture
    def async_tree(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        pkg = tmp_path / "src" / "repro" / "core"
        pkg.mkdir(parents=True)
        (pkg / "svc.py").write_text(ASYNC_BUG, encoding="utf-8")
        return tmp_path

    def test_project_rules_need_the_flag(self, async_tree, capsys):
        assert main(["check", "src", "--select", "RL007"]) == 0
        assert main(["check", "src", "--select", "RL007", "--project"]) == 1
        assert "RL007" in capsys.readouterr().out

    def test_index_reused_on_second_run(self, async_tree, capsys):
        args = ["check", "src", "--project", "--select", "RL007"]
        assert main(args) == 1
        assert "(0 from index, 1 parsed)" in capsys.readouterr().err
        assert Path(".repro-lint-index.json").exists()
        assert main(args) == 1
        assert "(1 from index, 0 parsed)" in capsys.readouterr().err

    def test_no_index_skips_the_cache(self, async_tree, capsys):
        args = [
            "check", "src", "--project", "--select", "RL007", "--no-index",
        ]
        assert main(args) == 1
        assert not Path(".repro-lint-index.json").exists()
        assert main(args) == 1
        assert "(0 from index, 1 parsed)" in capsys.readouterr().err

    def test_explicit_index_path(self, async_tree, tmp_path, capsys):
        index = tmp_path / "cache"
        index.mkdir()
        index = index / "idx.json"
        args = [
            "check", "src", "--project", "--select", "RL007",
            "--index", str(index),
        ]
        assert main(args) == 1
        assert index.exists()

    def test_project_repo_gate(self, monkeypatch, capsys):
        """The PR's acceptance gate: the whole repo is clean under the
        project pass with no baseline debt."""
        monkeypatch.chdir(REPO_ROOT)
        assert main([
            "check", "src", "tests", "--project", "--no-index",
            "--no-baseline",
        ]) == 0


class TestRepoGate:
    def test_repo_is_clean_under_committed_baseline(self, monkeypatch, capsys):
        """The acceptance gate: the analyzer passes on the repo itself."""
        monkeypatch.chdir(REPO_ROOT)
        assert main(["check", "src", "tests"]) == 0

    def test_committed_baseline_is_loadable(self):
        baseline = REPO_ROOT / ".repro-lint-baseline.json"
        assert baseline.exists()
        load_baseline(baseline)
