"""Tests for the filtering condition (Sec. 3.3's keyword filter)."""

import numpy as np
import pytest

from repro import GeoDataset, RegionQuery, greedy_select
from repro.geo import BoundingBox

TEXTS = [
    "sushi restaurant downtown",
    "art gallery modern",
    "thai restaurant spicy noodles",
    "city park fountain",
    "Restaurant bar rooftop",
    "bike rental shop",
]


@pytest.fixture
def ds():
    gen = np.random.default_rng(5)
    return GeoDataset.build(gen.random(6), gen.random(6), texts=TEXTS)


class TestKeywordFilter:
    def test_matches_case_insensitive(self, ds):
        ids = ds.keyword_filter("restaurant")
        assert ids.tolist() == [0, 2, 4]

    def test_no_matches(self, ds):
        assert len(ds.keyword_filter("pharmacy")) == 0

    def test_substring_semantics(self, ds):
        assert ds.keyword_filter("rest").tolist() == [0, 2, 4]

    def test_empty_keyword_rejected(self, ds):
        with pytest.raises(ValueError):
            ds.keyword_filter("")

    def test_requires_texts(self):
        plain = GeoDataset.build(np.array([0.5]), np.array([0.5]))
        with pytest.raises(ValueError, match="texts"):
            plain.keyword_filter("x")


class TestFilteredSelection:
    def test_selection_restricted_to_filter(self, ds):
        query = RegionQuery(
            region=BoundingBox(-0.1, -0.1, 1.1, 1.1), k=2, theta=0.0
        )
        matching = ds.keyword_filter("restaurant")
        result = greedy_select(ds, query, candidates=matching)
        assert set(result.selected.tolist()) <= set(matching.tolist())
        assert len(result) == 2

    def test_score_still_covers_whole_region(self, ds):
        from repro import representative_score

        query = RegionQuery(
            region=BoundingBox(-0.1, -0.1, 1.1, 1.1), k=2, theta=0.0
        )
        matching = ds.keyword_filter("restaurant")
        result = greedy_select(ds, query, candidates=matching)
        want = representative_score(ds, result.region_ids, result.selected)
        assert result.score == pytest.approx(want)
        assert len(result.region_ids) == 6  # population unrestricted

    def test_filter_outside_region_ignored(self, ds):
        # Candidates outside the viewport cannot be picked.
        tiny = BoundingBox.from_center(
            __import__("repro.geo.point", fromlist=["Point"]).Point(
                float(ds.xs[1]), float(ds.ys[1])
            ),
            1e-6,
        )
        query = RegionQuery(region=tiny, k=2, theta=0.0)
        matching = ds.keyword_filter("restaurant")
        result = greedy_select(ds, query, candidates=matching)
        assert len(result) == 0
