"""The span tracer: tree construction, export, session integration."""

import json
import threading

import numpy as np
import pytest

from repro import MapSession, MetricsRegistry
from repro.geo import BoundingBox
from repro.trace import (
    NULL_TRACER,
    NullTracer,
    Tracer,
    chrome_trace,
    format_span_tree,
    validate_chrome_trace,
    validate_chrome_trace_file,
    write_chrome_trace,
)


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def advance(self, dt: float) -> None:
        self.now += dt

    def __call__(self) -> float:
        return self.now


class TestTracerCore:
    def test_nested_spans_form_a_tree(self):
        clock = FakeClock()
        tracer = Tracer(clock=clock)
        with tracer.span("outer") as outer:
            clock.advance(1.0)
            with tracer.span("inner") as inner:
                clock.advance(0.5)
            clock.advance(0.25)
        assert tracer.roots == [outer]
        assert outer.children == [inner]
        assert inner.children == []
        assert outer.duration_s == pytest.approx(1.75)
        assert inner.duration_s == pytest.approx(0.5)

    def test_sibling_spans_attach_in_order(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("root"):
            with tracer.span("a"):
                pass
            with tracer.span("b"):
                pass
        (root,) = tracer.roots
        assert [c.name for c in root.children] == ["a", "b"]

    def test_current_tracks_the_open_span(self):
        tracer = Tracer(clock=FakeClock())
        assert tracer.current() is None
        with tracer.span("outer") as outer:
            assert tracer.current() is outer
            with tracer.span("inner") as inner:
                assert tracer.current() is inner
            assert tracer.current() is outer
        assert tracer.current() is None

    def test_explicit_parent_overrides_context(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("a") as a:
            pass
        with tracer.span("b"):
            with tracer.span("child", parent=a) as child:
                pass
        assert child in a.children
        assert [r.name for r in tracer.roots] == ["a", "b"]

    def test_parent_crosses_threads(self):
        """Worker-thread spans attach under an explicit parent even
        though the worker's context never saw the submitting span."""
        tracer = Tracer()
        with tracer.span("root") as root:
            def work():
                # Fresh thread: no inherited context.
                assert tracer.current() is None
                with tracer.span("task", parent=root):
                    pass
            t = threading.Thread(target=work)
            t.start()
            t.join()
        assert [c.name for c in root.children] == ["task"]

    def test_record_attaches_retroactive_span(self):
        clock = FakeClock()
        tracer = Tracer(clock=clock)
        with tracer.span("root") as root:
            span = tracer.record("measured", 1.0, 3.5, items=4)
        assert span in root.children
        assert span.duration_s == pytest.approx(2.5)
        assert span.args["items"] == 4

    def test_event_lands_on_current_span(self):
        clock = FakeClock()
        tracer = Tracer(clock=clock)
        with tracer.span("root") as root:
            clock.advance(0.5)
            tracer.event("breaker.trip", failures=3)
        (event,) = root.events
        assert event.name == "breaker.trip"
        assert event.ts == pytest.approx(0.5)
        assert event.args == {"failures": 3}
        # Outside any span the event is dropped, not an error.
        tracer.event("orphan")

    def test_annotate_chains_and_merges(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("s", a=1) as span:
            span.annotate(b=2).annotate(a=3)
        assert span.args == {"a": 3, "b": 2}

    def test_walk_and_child_seconds(self):
        clock = FakeClock()
        tracer = Tracer(clock=clock)
        with tracer.span("root") as root:
            with tracer.span("a"):
                clock.advance(1.0)
            with tracer.span("b"):
                clock.advance(2.0)
                with tracer.span("c"):
                    clock.advance(1.0)
        assert [s.name for s in root.walk()] == ["root", "a", "b", "c"]
        assert root.child_seconds() == pytest.approx(4.0)

    def test_max_spans_drops_new_roots_not_children(self):
        tracer = Tracer(clock=FakeClock(), max_spans=2)
        with tracer.span("kept"):
            with tracer.span("child"):  # children always admitted
                pass
        with tracer.span("dropped"):
            pass
        assert [r.name for r in tracer.roots] == ["kept"]
        assert tracer.dropped == 1
        tracer.clear()
        assert tracer.roots == []
        assert tracer.dropped == 0
        with tracer.span("fresh"):
            pass
        assert [r.name for r in tracer.roots] == ["fresh"]

    def test_max_spans_validation(self):
        with pytest.raises(ValueError):
            Tracer(max_spans=0)

    def test_metrics_integration(self):
        clock = FakeClock()
        metrics = MetricsRegistry()
        tracer = Tracer(clock=clock, metrics=metrics)
        for dt in (0.1, 0.3):
            with tracer.span("op"):
                clock.advance(dt)
        summary = metrics.summary("trace.op")
        assert summary["count"] == 2
        assert summary["max"] == pytest.approx(0.3)

    def test_concurrent_root_spans_from_many_threads(self):
        tracer = Tracer()
        n = 8
        barrier = threading.Barrier(n)

        def work(i):
            barrier.wait()
            for _ in range(50):
                with tracer.span(f"thread-{i}"):
                    pass

        threads = [threading.Thread(target=work, args=(i,)) for i in range(n)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(tracer.roots) == n * 50


class TestNullTracer:
    def test_full_surface_is_inert(self):
        tracer = NullTracer()
        assert not tracer.enabled
        with tracer.span("anything", key=1) as span:
            span.annotate(more=2)
            tracer.event("event")
        assert tracer.record("x", 0.0, 1.0).duration_s == 0.0
        assert tracer.current() is None
        assert tracer.roots == []
        tracer.clear()

    def test_shared_instance(self):
        assert isinstance(NULL_TRACER, NullTracer)
        # span() allocates nothing per call — same reusable object.
        # repro-lint: disable=RL003 -- asserts NullTracer hands out one reusable no-op context manager; no span is opened
        assert NULL_TRACER.span("a") is NULL_TRACER.span("b")


class TestChromeExport:
    def _sample_tracer(self):
        clock = FakeClock()
        clock.now = 100.0  # non-zero epoch: exports must rebase
        tracer = Tracer(clock=clock)
        with tracer.span("root", op="pan"):
            clock.advance(0.001)
            with tracer.span("child"):
                clock.advance(0.002)
            tracer.event("mark", detail="x")
            clock.advance(0.001)
        return tracer

    def test_chrome_trace_structure(self):
        doc = chrome_trace(self._sample_tracer())
        stats = validate_chrome_trace(doc)
        assert stats["spans"] == 2
        assert stats["instants"] == 1
        by_name = {e["name"]: e for e in doc["traceEvents"]
                   if e["ph"] == "X"}
        root, child = by_name["root"], by_name["child"]
        # Rebased to the earliest root, in microseconds.
        assert root["ts"] == 0
        assert root["dur"] == pytest.approx(4000, abs=1)
        assert child["ts"] == pytest.approx(1000, abs=1)
        assert child["dur"] == pytest.approx(2000, abs=1)
        assert root["args"]["op"] == "pan"

    def test_numpy_args_are_json_safe(self):
        clock = FakeClock()
        tracer = Tracer(clock=clock)
        with tracer.span(
            "s", count=np.int64(3), frac=np.float64(0.5),
            ids=np.arange(2),
        ):
            clock.advance(0.001)
        json.dumps(chrome_trace(tracer))  # must not raise

    def test_write_and_validate_file(self, tmp_path):
        path = tmp_path / "trace.json"
        write_chrome_trace(self._sample_tracer(), path)
        stats = validate_chrome_trace_file(path)
        assert stats["spans"] == 2

    def test_validation_rejects_garbage(self):
        with pytest.raises(ValueError):
            validate_chrome_trace({"traceEvents": []})
        with pytest.raises(ValueError):
            validate_chrome_trace({"traceEvents": [{"ph": "X"}]})
        with pytest.raises(ValueError):
            validate_chrome_trace([1, 2, 3])

    def test_format_span_tree(self):
        (root,) = self._sample_tracer().roots
        text = format_span_tree(root)
        assert "root" in text and "child" in text
        assert "100.0%" in text
        assert "! mark" in text


def _session(dataset, tracer=None, **kwargs):
    return MapSession(dataset, k=8, tracer=tracer, **kwargs)


def _drive(session):
    steps = [session.start(BoundingBox(0.1, 0.1, 0.7, 0.7))]
    steps.append(session.zoom_in(0.5))
    steps.append(session.pan(0.05, 0.0))
    steps.append(session.zoom_out(2.0))
    return steps


class TestSessionIntegration:
    def test_traced_selections_are_bit_identical(self, uniform_dataset):
        plain = _drive(_session(uniform_dataset, prefetch=True))
        traced = _drive(
            _session(uniform_dataset, prefetch=True, tracer=Tracer())
        )
        for a, b in zip(plain, traced):
            assert np.array_equal(a.result.selected, b.result.selected)
            assert a.result.score == b.result.score

    def test_every_step_yields_a_span_tree(self, uniform_dataset):
        tracer = Tracer()
        steps = _drive(_session(uniform_dataset, tracer=tracer))
        for step in steps:
            assert step.span is not None
            assert step.span.name == f"session.{step.operation}" or (
                step.operation == "initial"
                and step.span.name == "session.initial"
            )
            names = [s.name for s in step.span.walk()]
            assert "ladder.exact" in names
            assert "greedy.init" in names
            assert "greedy.loop" in names
        # Untraced sessions leave the field empty.
        for step in _drive(_session(uniform_dataset)):
            assert step.span is None

    def test_span_duration_matches_elapsed(self, uniform_dataset):
        tracer = Tracer()
        steps = _drive(_session(uniform_dataset, tracer=tracer))
        for step in steps:
            # The root span wraps exactly the timed region.
            assert step.span.duration_s <= step.elapsed_s
            assert step.span.duration_s >= 0.5 * step.elapsed_s

    def test_attribution_covers_most_of_the_root(self, uniform_dataset):
        """Direct children of each step's root span account for >=90%
        of the measured wall time (the acceptance bar)."""
        tracer = Tracer()
        steps = _drive(_session(uniform_dataset, tracer=tracer))
        total = sum(s.span.duration_s for s in steps)
        attributed = sum(s.span.child_seconds() for s in steps)
        assert total > 0
        assert attributed >= 0.9 * total

    def test_prefetch_and_capture_spans_off_response_path(
        self, uniform_dataset
    ):
        tracer = Tracer()
        session = _session(
            uniform_dataset, prefetch=True, similarity_cache=True,
            tracer=tracer,
        )
        _drive(session)
        names = [r.name for r in tracer.roots]
        assert "session.prefetch" in names
        assert "session.warm_capture" in names
        prefetch = next(
            r for r in tracer.roots if r.name == "session.prefetch"
        )
        child_names = {c.name for c in prefetch.children}
        assert {"prefetch.zoom_in", "prefetch.zoom_out", "prefetch.pan"} & (
            child_names | {g.name for c in prefetch.children
                           for g in c.walk()}
        )

    def test_pool_tasks_attach_to_submitting_span(self, uniform_dataset):
        tracer = Tracer()
        session = _session(
            uniform_dataset, prefetch=True, workers=2,
            parallel_backend="thread", tracer=tracer,
        )
        try:
            _drive(session)
        finally:
            session.close()
        prefetch_roots = [
            r for r in tracer.roots if r.name == "session.prefetch"
        ]
        assert prefetch_roots
        tasks = [
            s for r in prefetch_roots for s in r.walk()
            if s.name == "parallel.task"
        ]
        assert tasks  # fan-out spans nested under the prefetch root

    def test_cli_trace_export_validates(self, uniform_dataset, tmp_path):
        tracer = Tracer()
        _drive(_session(uniform_dataset, prefetch=True, tracer=tracer))
        path = tmp_path / "session.json"
        write_chrome_trace(tracer, path)
        stats = validate_chrome_trace_file(path)
        assert stats["spans"] >= 4

    def test_ladder_degrade_event_recorded(self, uniform_dataset):
        tracer = Tracer()
        session = MapSession(
            uniform_dataset, k=8, max_iterations=1, tracer=tracer
        )
        step = session.start(BoundingBox(0.0, 0.0, 1.0, 1.0))
        assert step.degraded
        events = [
            e.name for s in step.span.walk() for e in s.events
        ] + [e.name for e in step.span.events]
        assert "ladder.degrade" in events
