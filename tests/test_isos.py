"""Tests for the ISOS greedy (Def. 3.6, Sec. 5.1)."""

import numpy as np
import pytest

from repro import GeoDataset, IsosQuery, isos_select
from repro.geo import BoundingBox
from repro.geo.distance import pairwise_min_distance
from repro.similarity import MatrixSimilarity

WHOLE = BoundingBox(-0.1, -0.1, 1.1, 1.1)


@pytest.fixture
def ds():
    gen = np.random.default_rng(21)
    n = 60
    return GeoDataset.build(
        gen.random(n), gen.random(n),
        weights=gen.random(n),
        similarity=MatrixSimilarity.random(n, gen),
    )


class TestIsosQueryValidation:
    def test_d_larger_than_k_rejected(self):
        with pytest.raises(ValueError, match="exceeds k"):
            IsosQuery(
                region=WHOLE, k=2, theta=0.0,
                candidates=np.array([5, 6]),
                mandatory=np.array([0, 1, 2]),
            )

    def test_overlapping_d_and_g_rejected(self):
        with pytest.raises(ValueError, match="overlap"):
            IsosQuery(
                region=WHOLE, k=5, theta=0.0,
                candidates=np.array([1, 2, 3]),
                mandatory=np.array([3, 4]),
            )

    def test_bad_k_and_theta(self):
        with pytest.raises(ValueError):
            IsosQuery(region=WHOLE, k=0, theta=0.0,
                      candidates=np.array([1]), mandatory=np.array([]))
        with pytest.raises(ValueError):
            IsosQuery(region=WHOLE, k=2, theta=-0.1,
                      candidates=np.array([1]), mandatory=np.array([]))


class TestIsosSelection:
    def test_mandatory_always_included_first(self, ds):
        mandatory = np.array([3, 17])
        candidates = np.setdiff1d(np.arange(60), mandatory)
        query = IsosQuery(
            region=WHOLE, k=6, theta=0.0,
            candidates=candidates, mandatory=mandatory,
        )
        result = isos_select(ds, query)
        assert result.selected[:2].tolist() == [3, 17]
        assert len(result) == 6

    def test_picks_only_from_candidates(self, ds):
        mandatory = np.array([0])
        candidates = np.arange(40, 60)  # narrow G
        query = IsosQuery(
            region=WHOLE, k=5, theta=0.0,
            candidates=candidates, mandatory=mandatory,
        )
        result = isos_select(ds, query)
        picks = result.selected[1:]
        assert set(picks.tolist()) <= set(candidates.tolist())

    def test_visibility_including_mandatory(self, ds):
        mandatory = np.array([1, 2])
        candidates = np.setdiff1d(np.arange(60), mandatory)
        query = IsosQuery(
            region=WHOLE, k=8, theta=0.08,
            candidates=candidates, mandatory=mandatory,
        )
        result = isos_select(ds, query)
        picks = result.selected[2:]
        # Greedy picks must respect theta among themselves AND against D.
        sel = result.selected
        sub = np.concatenate([picks, mandatory])
        assert set(sub.tolist()) == set(sel.tolist())
        if len(picks) >= 1:
            for p in picks:
                for m in mandatory:
                    d = np.hypot(ds.xs[p] - ds.xs[m], ds.ys[p] - ds.ys[m])
                    assert d >= query.theta
            if len(picks) >= 2:
                assert pairwise_min_distance(
                    ds.xs[picks], ds.ys[picks]
                ) >= query.theta

    def test_empty_candidates_returns_mandatory_only(self, ds):
        mandatory = np.array([5, 6])
        query = IsosQuery(
            region=WHOLE, k=4, theta=0.0,
            candidates=np.array([], dtype=np.int64), mandatory=mandatory,
        )
        result = isos_select(ds, query)
        assert result.selected.tolist() == [5, 6]

    def test_empty_mandatory_reduces_to_sos_candidates(self, ds):
        candidates = np.arange(60)
        query = IsosQuery(
            region=WHOLE, k=5, theta=0.02,
            candidates=candidates, mandatory=np.array([], dtype=np.int64),
        )
        result = isos_select(ds, query)
        assert len(result) == 5

    def test_score_includes_mandatory_contribution(self, ds):
        from repro import representative_score

        mandatory = np.array([10])
        candidates = np.setdiff1d(np.arange(60), mandatory)
        query = IsosQuery(
            region=WHOLE, k=3, theta=0.0,
            candidates=candidates, mandatory=mandatory,
        )
        result = isos_select(ds, query)
        want = representative_score(ds, result.region_ids, result.selected)
        assert result.score == pytest.approx(want)

    def test_initial_bounds_must_align(self, ds):
        query = IsosQuery(
            region=WHOLE, k=3, theta=0.0,
            candidates=np.arange(10), mandatory=np.array([], dtype=np.int64),
        )
        with pytest.raises(ValueError, match="align"):
            isos_select(ds, query, initial_bounds=np.ones(5))

    def test_valid_upper_bounds_give_same_selection(self, ds):
        """Seeding the heap with any dominating bounds must not change
        the output (the lazy-forward correctness argument)."""
        candidates = np.arange(60)
        query = IsosQuery(
            region=WHOLE, k=6, theta=0.03,
            candidates=candidates, mandatory=np.array([], dtype=np.int64),
        )
        plain = isos_select(ds, query)
        loose = isos_select(
            ds, query, initial_bounds=np.full(60, 1e6)
        )
        assert plain.selected.tolist() == loose.selected.tolist()
