"""Property-based tests of the greedy selector's global invariants.

These complement the targeted tests in test_greedy.py: over randomly
generated instances, the output must always respect the visibility
constraint, never exceed ``k``, achieve at least the best single-object
score, and behave monotonically in ``k`` and ``θ``.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import GeoDataset, RegionQuery, greedy_select, representative_score
from repro.geo import BoundingBox
from repro.geo.distance import pairwise_min_distance
from repro.similarity import MatrixSimilarity

WHOLE = BoundingBox(-0.1, -0.1, 1.1, 1.1)


@st.composite
def instances(draw):
    seed = draw(st.integers(0, 100_000))
    n = draw(st.integers(3, 40))
    k = draw(st.integers(1, 10))
    theta = draw(st.floats(0.0, 0.3))
    gen = np.random.default_rng(seed)
    ds = GeoDataset.build(
        gen.random(n), gen.random(n),
        weights=gen.random(n),
        similarity=MatrixSimilarity.random(n, gen),
    )
    return ds, RegionQuery(region=WHOLE, k=k, theta=theta)


class TestGlobalInvariants:
    @settings(max_examples=50, deadline=None)
    @given(inst=instances())
    def test_feasibility(self, inst):
        ds, query = inst
        result = greedy_select(ds, query)
        assert len(result) <= query.k
        sel = result.selected
        assert len(set(sel.tolist())) == len(sel)
        if len(sel) >= 2:
            assert pairwise_min_distance(
                ds.xs[sel], ds.ys[sel]
            ) >= query.theta - 1e-12

    @settings(max_examples=50, deadline=None)
    @given(inst=instances())
    def test_score_consistency(self, inst):
        ds, query = inst
        result = greedy_select(ds, query)
        want = representative_score(ds, result.region_ids, result.selected)
        assert result.score == pytest.approx(want)

    @settings(max_examples=30, deadline=None)
    @given(inst=instances())
    def test_at_least_best_single_object(self, inst):
        """Greedy's first pick maximizes the single-object score, so
        the final score dominates every singleton."""
        ds, query = inst
        result = greedy_select(ds, query)
        ids = np.arange(len(ds))
        best_single = max(
            representative_score(ds, ids, np.array([i])) for i in ids
        )
        assert result.score >= best_single - 1e-12

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 10_000), theta=st.floats(0.0, 0.2))
    def test_monotone_in_k(self, seed, theta):
        gen = np.random.default_rng(seed)
        n = 25
        ds = GeoDataset.build(
            gen.random(n), gen.random(n),
            similarity=MatrixSimilarity.random(n, gen),
        )
        scores = [
            greedy_select(ds, RegionQuery(region=WHOLE, k=k, theta=theta)).score
            for k in (1, 3, 6, 12)
        ]
        assert all(a <= b + 1e-12 for a, b in zip(scores, scores[1:]))

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_looser_theta_never_hurts(self, seed):
        """Relaxing the visibility constraint can only help: the
        feasible set grows, so the greedy score with smaller θ is at
        least the score with a larger θ minus numerical slack."""
        gen = np.random.default_rng(seed)
        n = 25
        ds = GeoDataset.build(
            gen.random(n), gen.random(n),
            similarity=MatrixSimilarity.random(n, gen),
        )
        tight = greedy_select(ds, RegionQuery(region=WHOLE, k=5, theta=0.3))
        loose = greedy_select(ds, RegionQuery(region=WHOLE, k=5, theta=0.0))
        # Greedy is not optimal, so this is not a theorem — but on
        # these instance sizes the heuristic should essentially never
        # lose more than a whisker when constraints are removed.
        assert loose.score >= tight.score - 0.05
