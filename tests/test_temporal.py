"""Time as a first-class navigation axis.

Covers the whole temporal stack added around :mod:`repro.core.temporal`:

* dataset timestamps (validation, window masks, loader round-trips,
  generator determinism),
* :class:`TimeWindowQuery`,
* the temporal prefetcher (Lemma-5.1 masses for slider step targets),
* :meth:`WorkerPool.mass_sweep` bit-identity across backends,
* :class:`MapSession` time-slider navigation (hysteresis, windowed
  populations, seeded steps bit-identical to cold re-selection), and
* the service wiring (time ops and the long-lived per-session stream).
"""

from __future__ import annotations

import asyncio
import functools

import numpy as np
import pytest

from repro import (
    BoundingBox,
    MapSession,
    PrefetchUnavailable,
    TimeWindowQuery,
)
from repro.core import GeoDataset
from repro.core.temporal import TemporalPrefetcher
from repro.datasets import load_csv, load_jsonl, save_csv, save_jsonl
from repro.datasets.generators import DatasetSpec, generate_clustered
from repro.parallel import WorkerPool
from repro.service.service import SelectionService, ServiceRequest
from repro.similarity import (
    EuclideanSimilarity,
    GrowableEuclideanSimilarity,
)

REGION = BoundingBox(0.2, 0.2, 0.8, 0.8)
FRAME = BoundingBox(0.0, 0.0, 1.0, 1.0)


@functools.lru_cache(maxsize=8)
def _dataset(seed: int, n: int = 400) -> GeoDataset:
    gen = np.random.default_rng(seed)
    return GeoDataset.build(
        gen.random(n), gen.random(n),
        weights=gen.random(n), ts=gen.random(n),
    )


@functools.lru_cache(maxsize=4)
def _clustered(seed: int = 11, n: int = 1500) -> GeoDataset:
    return generate_clustered(
        DatasetSpec(name="temporal", n=n, n_clusters=5, seed=seed),
        with_timestamps=True,
    )


# ----------------------------------------------------------------------
# Dataset timestamps
# ----------------------------------------------------------------------


class TestDatasetTimestamps:
    def test_ts_validation(self):
        gen = np.random.default_rng(0)
        xs, ys = gen.random(5), gen.random(5)
        with pytest.raises(ValueError, match="one entry per object"):
            GeoDataset.build(xs, ys, ts=np.arange(3, dtype=float))
        with pytest.raises(ValueError, match="finite"):
            GeoDataset.build(xs, ys, ts=np.array([0, 1, 2, np.nan, 4.0]))

    def test_time_mask_requires_ts(self):
        gen = np.random.default_rng(0)
        dataset = GeoDataset.build(gen.random(5), gen.random(5))
        with pytest.raises(ValueError, match="no timestamps"):
            dataset.time_mask(0.0, 1.0)

    def test_time_mask_half_open(self):
        gen = np.random.default_rng(0)
        ts = np.array([0.0, 0.25, 0.5, 0.75, 1.0])
        dataset = GeoDataset.build(gen.random(5), gen.random(5), ts=ts)
        mask = dataset.time_mask(0.25, 0.75)
        assert mask.tolist() == [False, True, True, False, False]

    def test_objects_in_window_filters_both_axes(self):
        dataset = _dataset(1)
        ids = dataset.objects_in_window(REGION, 0.2, 0.6)
        spatial = dataset.objects_in(REGION)
        assert np.isin(ids, spatial).all()
        assert ((dataset.ts[ids] >= 0.2) & (dataset.ts[ids] < 0.6)).all()
        # Adjacent windows tile: their populations partition the
        # spatial population with timestamps in the union.
        left = dataset.objects_in_window(REGION, 0.0, 0.5)
        right = dataset.objects_in_window(REGION, 0.5, 1.5)
        both = np.union1d(left, right)
        assert np.array_equal(np.sort(spatial), both)
        assert len(np.intersect1d(left, right)) == 0


class TestLoaders:
    def test_jsonl_roundtrip_with_timestamps(self, tmp_path):
        dataset = _dataset(2)
        path = tmp_path / "corpus.jsonl"
        save_jsonl(dataset, path)
        loaded = load_jsonl(path)
        assert loaded.ts is not None
        np.testing.assert_array_equal(loaded.ts, dataset.ts)

    def test_csv_roundtrip_with_timestamps(self, tmp_path):
        dataset = _dataset(2)
        path = tmp_path / "corpus.csv"
        save_csv(dataset, path)
        loaded = load_csv(path)
        assert loaded.ts is not None
        np.testing.assert_array_equal(loaded.ts, dataset.ts)

    def test_jsonl_rejects_partial_timestamps(self, tmp_path):
        path = tmp_path / "half.jsonl"
        path.write_text(
            '{"x": 0.1, "y": 0.1, "w": 1.0, "t": 0.5}\n'
            '{"x": 0.2, "y": 0.2, "w": 1.0}\n'
        )
        with pytest.raises(ValueError, match="all records or none"):
            load_jsonl(path)
        # The mirror case: t appearing only later is equally rejected.
        path.write_text(
            '{"x": 0.1, "y": 0.1, "w": 1.0}\n'
            '{"x": 0.2, "y": 0.2, "w": 1.0, "t": 0.5}\n'
        )
        with pytest.raises(ValueError, match="all records or none"):
            load_jsonl(path)

    def test_untimestamped_roundtrip_stays_untimestamped(self, tmp_path):
        gen = np.random.default_rng(3)
        dataset = GeoDataset.build(gen.random(6), gen.random(6))
        path = tmp_path / "plain.jsonl"
        save_jsonl(dataset, path)
        assert load_jsonl(path).ts is None


class TestGeneratorTimestamps:
    def test_timestamps_do_not_perturb_coordinates(self):
        spec = DatasetSpec(name="det", n=600, n_clusters=4, seed=9)
        plain = generate_clustered(spec)
        stamped = generate_clustered(spec, with_timestamps=True)
        assert plain.ts is None
        assert stamped.ts is not None
        np.testing.assert_array_equal(plain.xs, stamped.xs)
        np.testing.assert_array_equal(plain.ys, stamped.ys)
        np.testing.assert_array_equal(plain.weights, stamped.weights)

    def test_timestamps_deterministic_and_bounded(self):
        spec = DatasetSpec(name="det", n=600, n_clusters=4, seed=9)
        a = generate_clustered(spec, with_timestamps=True)
        b = generate_clustered(spec, with_timestamps=True)
        np.testing.assert_array_equal(a.ts, b.ts)
        assert (a.ts >= 0.0).all() and (a.ts <= 1.0).all()


# ----------------------------------------------------------------------
# TimeWindowQuery
# ----------------------------------------------------------------------


class TestTimeWindowQuery:
    def test_validation(self):
        with pytest.raises(ValueError, match="empty time window"):
            TimeWindowQuery(REGION, k=3, theta=0.0, t_start=0.5, t_end=0.5)
        with pytest.raises(ValueError, match="finite"):
            TimeWindowQuery(
                REGION, k=3, theta=0.0, t_start=0.0, t_end=np.inf
            )
        with pytest.raises(ValueError, match="k must be positive"):
            TimeWindowQuery(REGION, k=0, theta=0.0, t_start=0.0, t_end=1.0)

    def test_shifted_and_projections(self):
        query = TimeWindowQuery(
            REGION, k=3, theta=0.01, t_start=0.2, t_end=0.4
        )
        assert query.span == pytest.approx(0.2)
        assert query.window == (0.2, 0.4)
        assert query.spatial.region == REGION
        stepped = query.shifted(0.1)
        assert stepped.window == (
            pytest.approx(0.3), pytest.approx(0.5)
        )
        assert stepped.k == query.k and stepped.theta == query.theta

    def test_with_theta_fraction(self):
        query = TimeWindowQuery.with_theta_fraction(
            REGION, k=5, t_start=0.0, t_end=1.0, theta_fraction=0.01
        )
        assert query.theta == pytest.approx(
            0.01 * max(REGION.width, REGION.height)
        )


# ----------------------------------------------------------------------
# Temporal prefetcher
# ----------------------------------------------------------------------


class TestTemporalPrefetcher:
    def test_requires_timestamps(self):
        gen = np.random.default_rng(0)
        dataset = GeoDataset.build(gen.random(5), gen.random(5))
        with pytest.raises(ValueError, match="ts is None"):
            TemporalPrefetcher(dataset)

    def test_bounds_dominate_exact_first_iteration_masses(self):
        dataset = _dataset(4)
        prefetcher = TemporalPrefetcher(dataset)
        data = prefetcher.prefetch_window(REGION, (0.2, 0.6))
        ids = dataset.objects_in_window(REGION, 0.2, 0.6)
        np.testing.assert_array_equal(np.sort(data.ids), np.sort(ids))
        exact = dataset.similarity.weighted_sims_sum(
            ids, ids, dataset.weights[ids]
        ) / len(ids)
        bounds = data.bounds_for(ids, len(ids))
        assert (bounds >= exact).all()

    def test_matches_is_exact(self):
        dataset = _dataset(4)
        prefetcher = TemporalPrefetcher(dataset)
        data = prefetcher.prefetch_window(REGION, (0.2, 0.6))
        assert data.matches(REGION, (0.2, 0.6))
        assert not data.matches(REGION, (0.2, 0.6000001))
        assert not data.matches(REGION.panned(0.01, 0.0), (0.2, 0.6))

    def test_coverage_miss_raises_prefetch_unavailable(self):
        dataset = _dataset(4)
        prefetcher = TemporalPrefetcher(dataset)
        data = prefetcher.prefetch_window(REGION, (0.2, 0.6))
        outside = dataset.objects_in_window(REGION, 0.9, 1.1)[:1]
        assert not data.covers(outside)
        with pytest.raises(PrefetchUnavailable):
            data.bounds_for(outside, 10)

    def test_prefetch_steps_keys_both_directions(self):
        dataset = _dataset(4)
        prefetcher = TemporalPrefetcher(dataset)
        steps = prefetcher.prefetch_steps(REGION, (0.3, 0.5), dt=0.1)
        assert len(steps) == 2
        forward = min(steps, key=lambda w: -w[0])
        backward = min(steps, key=lambda w: w[0])
        assert forward == (pytest.approx(0.4), pytest.approx(0.6))
        assert backward == (pytest.approx(0.2), pytest.approx(0.4))
        for window, data in steps.items():
            assert data.matches(REGION, window)

    def test_pooled_masses_bit_identical_to_serial(self):
        dataset = _dataset(4)
        serial = TemporalPrefetcher(dataset).prefetch_window(
            REGION, (0.0, 1.0)
        )
        pool = WorkerPool(2, "thread", similarity=dataset.similarity)
        try:
            pooled = TemporalPrefetcher(
                dataset, pool=pool
            ).prefetch_window(REGION, (0.0, 1.0))
        finally:
            pool.close()
        np.testing.assert_array_equal(serial.ids, pooled.ids)
        np.testing.assert_array_equal(serial.raw_sums, pooled.raw_sums)


class TestMassSweep:
    def test_backends_bit_identical(self):
        gen = np.random.default_rng(6)
        n = 800
        xs, ys = gen.random(n), gen.random(n)
        weights = gen.random(n)
        model = EuclideanSimilarity(xs, ys)
        ids = np.arange(n, dtype=np.int64)
        expected = model.weighted_sims_sum(ids, ids, weights)
        for backend in ("thread", "process"):
            pool = WorkerPool(2, backend, similarity=model)
            try:
                got = pool.mass_sweep(ids, ids, weights)
            finally:
                pool.close()
            np.testing.assert_array_equal(expected, got)

    def test_empty_targets(self):
        gen = np.random.default_rng(6)
        model = EuclideanSimilarity(gen.random(10), gen.random(10))
        pool = WorkerPool(2, "thread", similarity=model)
        try:
            empty = pool.mass_sweep(
                np.empty(0, dtype=np.int64),
                np.arange(10),
                np.ones(10),
            )
        finally:
            pool.close()
        assert len(empty) == 0


# ----------------------------------------------------------------------
# Session time navigation
# ----------------------------------------------------------------------


class TestSessionTimeNavigation:
    def test_constructor_validation(self):
        gen = np.random.default_rng(0)
        plain = GeoDataset.build(gen.random(10), gen.random(10))
        with pytest.raises(ValueError, match="requires dataset timestamps"):
            MapSession(plain, k=3, time_window=(0.0, 1.0))
        with pytest.raises(ValueError, match="empty time window"):
            MapSession(_dataset(1), k=3, time_window=(0.5, 0.5))
        with pytest.raises(ValueError, match="time_hysteresis"):
            MapSession(_dataset(1), k=3, time_hysteresis=1.5)

    def test_window_filters_every_population(self):
        dataset = _dataset(1)
        with MapSession(dataset, k=10, time_window=(0.2, 0.6)) as session:
            step = session.start(REGION)
            expected = dataset.objects_in_window(REGION, 0.2, 0.6)
            assert np.isin(step.result.selected, expected).all()
            step = session.zoom_in(0.6)
            zoomed = dataset.objects_in_window(session.region, 0.2, 0.6)
            assert np.isin(step.result.selected, zoomed).all()

    def test_time_ops_require_timestamps_and_window(self):
        gen = np.random.default_rng(0)
        plain = GeoDataset.build(gen.random(50), gen.random(50))
        with MapSession(plain, k=3) as session:
            session.start(REGION)
            with pytest.raises(ValueError, match="requires dataset timestamps"):
                session.set_time_window(0.0, 1.0)
            with pytest.raises(ValueError, match="requires dataset timestamps"):
                session.time_step(0.1)
        with MapSession(_dataset(1), k=3) as session:
            session.start(REGION)
            with pytest.raises(ValueError, match="no active time window"):
                session.time_step(0.1)

    def test_set_time_window_reanchors(self):
        with MapSession(_dataset(1), k=8) as session:
            session.start(REGION)
            step = session.set_time_window(0.3, 0.7)
            assert step.operation == "set_time_window"
            assert step.time_window == (0.3, 0.7)
            assert len(step.mandatory) == 0
            assert session.time_window == (0.3, 0.7)

    def test_time_step_carries_survivors(self):
        dataset = _dataset(1)
        with MapSession(
            dataset, k=8, time_window=(0.0, 0.8), time_hysteresis=0.0
        ) as session:
            session.start(REGION)
            visible = session.visible
            step = session.time_step(0.1)
            survivors = visible[
                (dataset.ts[visible] >= 0.1) & (dataset.ts[visible] < 0.9)
            ]
            np.testing.assert_array_equal(np.sort(step.mandatory),
                                          np.sort(survivors))
            assert np.isin(survivors, step.result.selected).all()

    def test_time_step_reanchors_below_hysteresis(self):
        dataset = _dataset(1)
        with MapSession(
            dataset, k=8, time_window=(0.0, 0.3), time_hysteresis=1.0
        ) as session:
            session.start(REGION)
            assert len(session.visible) > 0
            # A full-span jump keeps (almost) nobody: with hysteresis
            # 1.0 any loss re-anchors.
            step = session.time_step(0.5)
            assert len(step.mandatory) == 0
            assert session.metrics.count("session.temporal_reanchors") == 1

    def test_temporal_prefetch_serves_repeated_steps(self):
        with MapSession(
            _clustered(), k=8, time_window=(0.2, 0.4),
            prefetch=True, equivalence_check=True,
        ) as session:
            session.start(REGION)
            session.time_step(0.05)  # establishes the stride
            served = [session.time_step(0.05) for _ in range(3)]
        assert all(s.temporal_seeded for s in served)
        assert all(
            s.stats.get("equivalence_checked") for s in served
        )

    def test_delta_seeded_time_steps_bit_identical(self):
        # equivalence_check re-runs every seeded step cold and raises
        # on any difference — this is the acceptance criterion's
        # bit-identity check, driven through the delta path.
        with MapSession(
            _clustered(), k=8, time_window=(0.2, 0.4),
            delta=True, equivalence_check=True,
        ) as session:
            session.start(REGION)
            steps = [session.time_step(0.02) for _ in range(4)]
        assert any(s.delta_seeded for s in steps)

    def test_swap_dataset_clears_temporal_state(self):
        gen = np.random.default_rng(0)
        n = len(_dataset(1))
        plain = GeoDataset.build(gen.random(n), gen.random(n))
        with MapSession(
            _dataset(1), k=5, time_window=(0.2, 0.8)
        ) as session:
            session.start(REGION)
            session.swap_dataset(plain)
            assert session.time_window is None
            assert session._temporal_prefetcher is None
            session.start(REGION)
            with pytest.raises(ValueError, match="requires dataset timestamps"):
                session.set_time_window(0.0, 1.0)


# ----------------------------------------------------------------------
# Growable similarity (stream universe)
# ----------------------------------------------------------------------


class TestGrowableSimilarity:
    def test_append_matches_fixed_model(self):
        gen = np.random.default_rng(7)
        xs, ys = gen.random(20), gen.random(20)
        fixed = EuclideanSimilarity(xs, ys, d_max=1.0)
        grown = GrowableEuclideanSimilarity(d_max=1.0)
        grown.append(xs[:12], ys[:12])
        grown.append(xs[12:], ys[12:])
        assert len(grown) == 20
        ids = np.arange(20, dtype=np.int64)
        np.testing.assert_array_equal(
            fixed.sims_to(3, ids), grown.sims_to(3, ids)
        )

    def test_truncate_rolls_back(self):
        grown = GrowableEuclideanSimilarity(d_max=1.0)
        grown.append(np.array([0.1, 0.2, 0.3]), np.array([0.1, 0.2, 0.3]))
        grown.truncate(1)
        assert len(grown) == 1
        with pytest.raises(ValueError):
            grown.truncate(5)

    def test_no_process_spec(self):
        assert GrowableEuclideanSimilarity(d_max=1.0).process_spec() is None


# ----------------------------------------------------------------------
# Service wiring
# ----------------------------------------------------------------------


def _service() -> SelectionService:
    return SelectionService(
        {"corpus": _clustered()}, default_deadline_ms=30_000
    )


def _run(coro):
    return asyncio.run(coro)


class TestServiceTemporal:
    def test_time_window_override_and_time_ops(self):
        async def scenario():
            service = _service()
            try:
                start = await service.handle(ServiceRequest(
                    op="start",
                    params={
                        "region": [0.2, 0.2, 0.8, 0.8],
                        "k": 6,
                        "time_window": [0.2, 0.4],
                    },
                ))
                assert start.ok, start.error
                assert start.detail["time_window"] == [0.2, 0.4]
                sid = start.session_id
                stepped = await service.handle(ServiceRequest(
                    op="time_step", session_id=sid, params={"dt": 0.1}
                ))
                assert stepped.ok, stepped.error
                assert stepped.detail["time_window"] == [
                    pytest.approx(0.3), pytest.approx(0.5)
                ]
                jumped = await service.handle(ServiceRequest(
                    op="set_time_window", session_id=sid,
                    params={"t_start": 0.6, "t_end": 0.9},
                ))
                assert jumped.ok and jumped.detail["time_window"] == [0.6, 0.9]
                missing = await service.handle(ServiceRequest(
                    op="time_step", session_id=sid, params={}
                ))
                assert not missing.ok
                assert missing.error_type == "ValueError"
            finally:
                service.close()

        _run(scenario())

    def test_stream_lifecycle(self):
        async def scenario():
            service = _service()
            try:
                start = await service.handle(ServiceRequest(
                    op="start",
                    params={"region": [0.0, 0.0, 1.0, 1.0], "k": 4},
                ))
                sid = start.session_id
                fed = await service.handle(ServiceRequest(
                    op="stream_extend", session_id=sid,
                    params={
                        "xs": [0.3, 0.5, 0.7],
                        "ys": [0.3, 0.5, 0.7],
                        "ts": [1.0, 2.0, 3.0],
                    },
                ))
                assert fed.ok, fed.error
                assert fed.detail["arrivals"] == 3
                assert fed.selection  # something got selected
                removed = await service.handle(ServiceRequest(
                    op="stream_remove", session_id=sid, params={"id": 0}
                ))
                assert removed.ok and removed.detail["removals"] == 1
                assert 0 not in removed.selection
                expired = await service.handle(ServiceRequest(
                    op="stream_expire", session_id=sid,
                    params={"cutoff": 2.5},
                ))
                assert expired.ok and expired.detail["expired"] == 1
                assert expired.selection == [2]
            finally:
                service.close()

        _run(scenario())

    def test_stream_extend_mismatch_is_atomic(self):
        async def scenario():
            service = _service()
            try:
                start = await service.handle(ServiceRequest(
                    op="start",
                    params={"region": [0.0, 0.0, 1.0, 1.0], "k": 4},
                ))
                sid = start.session_id
                bad = await service.handle(ServiceRequest(
                    op="stream_extend", session_id=sid,
                    params={
                        "xs": [0.3, 0.5],
                        "ys": [0.3, 0.5],
                        "weights": [0.5],
                    },
                ))
                assert not bad.ok
                assert bad.error_type == "StreamLengthMismatch"
                # The rejected batch left no trace: universe and stream
                # stay aligned and a follow-up ingest works.
                good = await service.handle(ServiceRequest(
                    op="stream_extend", session_id=sid,
                    params={"xs": [0.4], "ys": [0.4]},
                ))
                assert good.ok, good.error
                assert good.detail["arrivals"] == 1
                assert good.selection == [0]
            finally:
                service.close()

        _run(scenario())

    def test_stream_requires_started_session(self):
        async def scenario():
            service = _service()
            try:
                # start always runs a first selection, so a session is
                # always started here; exercise the guard directly.
                start = await service.handle(ServiceRequest(
                    op="start",
                    params={"region": [0.0, 0.0, 1.0, 1.0], "k": 4},
                ))
                entry = service.sessions.get(start.session_id)
                entry.session.region = None
                reply = await service.handle(ServiceRequest(
                    op="stream_extend", session_id=start.session_id,
                    params={"xs": [0.1], "ys": [0.1]},
                ))
                assert not reply.ok
                assert reply.error_type == "SessionNotStarted"
            finally:
                service.close()

        _run(scenario())
