"""Tests for the navigation predictor and predicted prefetching."""

import pytest

from repro import FrequencyPredictor, MapSession
from repro.core.prediction import OPERATIONS
from repro.geo import BoundingBox


class TestFrequencyPredictor:
    def test_validation(self):
        with pytest.raises(ValueError):
            FrequencyPredictor(top=0)
        with pytest.raises(ValueError):
            FrequencyPredictor(top=4)
        with pytest.raises(ValueError):
            FrequencyPredictor(smoothing=0.0)

    def test_cold_start_returns_top_operations(self):
        predictor = FrequencyPredictor(top=2)
        ranked = predictor.predict([])
        assert len(ranked) == 2
        assert set(ranked) <= set(OPERATIONS)

    def test_learns_dominant_operation(self):
        predictor = FrequencyPredictor(top=1)
        for _ in range(10):
            predictor.observe("pan")
        assert predictor.predict(["pan"]) == ["pan"]

    def test_transitions_outweigh_base_frequency(self):
        predictor = FrequencyPredictor(top=1, smoothing=0.5)
        # Overall zoom_in is frequent, but pans are always followed by
        # zoom_out in this user's behaviour.
        for _ in range(6):
            predictor.observe("zoom_in")
        for _ in range(4):
            predictor.observe("pan")
            predictor.observe("zoom_out")
        assert predictor.predict(["pan"]) == ["zoom_out"]

    def test_ignores_initial_marker(self):
        predictor = FrequencyPredictor(top=1)
        predictor.observe("initial")
        # No crash, no learning from the marker.
        assert len(predictor.predict(["initial"])) == 1

    def test_rank_is_subset_ordering(self):
        predictor = FrequencyPredictor(top=3)
        for op, times in (("pan", 5), ("zoom_in", 3), ("zoom_out", 1)):
            for _ in range(times):
                predictor.observe(op)
        # With no transition signal (interleaving destroyed), ranking
        # follows frequency.
        predictor._last = None
        assert predictor.predict([]) == ["pan", "zoom_in", "zoom_out"]


class TestPredictedPrefetchSession:
    @pytest.fixture
    def dataset(self):
        from repro.datasets import sg_pois

        return sg_pois(n=6000)

    def test_predicted_prefetch_hits_repeated_operation(self, dataset):
        session = MapSession(
            dataset, k=6, prefetch=True,
            predictor=FrequencyPredictor(top=1),
        )
        session.start(BoundingBox(0.2, 0.2, 0.8, 0.8))
        session.pan(0.03, 0.0)
        step = session.pan(0.03, 0.0)
        assert step.used_prefetch

    def test_miss_falls_back_correctly(self, dataset):
        predictor = FrequencyPredictor(top=1)
        for _ in range(5):
            predictor.observe("pan")  # predictor is convinced it's pans
        session = MapSession(
            dataset, k=6, prefetch=True, predictor=predictor,
        )
        session.start(BoundingBox(0.2, 0.2, 0.8, 0.8))
        step = session.zoom_in(0.5)  # surprise!
        assert not step.used_prefetch
        assert len(step.result) > 0  # fell back to exact init, correct

    def test_quality_matches_full_prefetch(self, dataset):
        """Predicted prefetching never changes selection quality —
        only whether the heap starts from bounds or exact gains (ties
        among duplicated objects may resolve differently, so we compare
        scores, not ids)."""
        region = BoundingBox(0.2, 0.2, 0.8, 0.8)
        full = MapSession(dataset, k=6, prefetch=True)
        pred = MapSession(
            dataset, k=6, prefetch=True,
            predictor=FrequencyPredictor(top=2),
        )
        a = full.start(region)
        b = pred.start(region)
        assert a.result.score == pytest.approx(b.result.score)
        for op, kwargs in (
            ("pan", dict(dx=0.05, dy=0.0)),
            ("zoom_in", dict(scale=0.5)),
            ("zoom_out", dict(scale=2.0)),
        ):
            a = getattr(full, op)(**kwargs)
            b = getattr(pred, op)(**kwargs)
            assert a.result.score == pytest.approx(b.result.score, rel=1e-6)

    def test_predicted_precompute_cheaper(self, dataset):
        region = BoundingBox(0.2, 0.2, 0.8, 0.8)
        full = MapSession(dataset, k=6, prefetch=True)
        pred = MapSession(
            dataset, k=6, prefetch=True,
            predictor=FrequencyPredictor(top=1),
        )
        full.start(region)
        pred.start(region)
        assert len(pred.prefetch_elapsed) < len(full.prefetch_elapsed)

    def test_rng_free_determinism(self, dataset):
        region = BoundingBox(0.2, 0.2, 0.8, 0.8)
        runs = []
        for _ in range(2):
            session = MapSession(
                dataset, k=6, prefetch=True,
                predictor=FrequencyPredictor(top=2),
            )
            session.start(region)
            step = session.pan(0.04, 0.0)
            runs.append(step.result.selected.tolist())
        assert runs[0] == runs[1]
