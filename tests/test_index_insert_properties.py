"""Property-based tests for incremental inserts (R-tree, quadtree).

Hypothesis drives interleavings of bulk-loaded points and inserts; the
index must stay equivalent to a linear scan after every batch, and its
structural invariants must hold.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geo import BoundingBox
from repro.index import LinearIndex, QuadTreeIndex, RTreeIndex

coord = st.floats(min_value=0.0, max_value=1.0,
                  allow_nan=False, allow_infinity=False)


@st.composite
def workloads(draw):
    bulk_n = draw(st.integers(0, 60))
    seed = draw(st.integers(0, 10_000))
    inserts = draw(
        st.lists(st.tuples(coord, coord), min_size=0, max_size=40)
    )
    gen = np.random.default_rng(seed)
    return gen.random(bulk_n), gen.random(bulk_n), inserts, seed


@pytest.mark.parametrize("index_cls", [RTreeIndex, QuadTreeIndex])
class TestInsertEquivalence:
    @settings(max_examples=30, deadline=None)
    @given(workload=workloads())
    def test_matches_linear_after_inserts(self, index_cls, workload):
        xs, ys, inserts, seed = workload
        kwargs = {"fanout": 4} if index_cls is RTreeIndex else {
            "leaf_capacity": 4
        }
        tree = index_cls(xs, ys, **kwargs)
        expected_id = len(xs)
        for x, y in inserts:
            assert tree.insert(float(x), float(y)) == expected_id
            expected_id += 1
        tree.check_invariants()

        truth = LinearIndex(tree.xs, tree.ys)
        gen = np.random.default_rng(seed + 1)
        for _ in range(5):
            x1, x2 = sorted(gen.random(2))
            y1, y2 = sorted(gen.random(2))
            box = BoundingBox(x1, y1, x2, y2)
            assert tree.query_region(box).tolist() == (
                truth.query_region(box).tolist()
            ), index_cls.__name__

    @settings(max_examples=20, deadline=None)
    @given(workload=workloads())
    def test_radius_matches_after_inserts(self, index_cls, workload):
        xs, ys, inserts, seed = workload
        tree = index_cls(xs, ys)
        for x, y in inserts:
            tree.insert(float(x), float(y))
        if len(tree) == 0:
            return
        gen = np.random.default_rng(seed + 2)
        x, y = gen.random(2)
        r = float(gen.uniform(0.05, 0.4))
        got = set(tree.query_radius(float(x), float(y), r).tolist())
        want = {
            i for i in range(len(tree))
            if np.hypot(tree.xs[i] - x, tree.ys[i] - y) <= r
        }
        assert got == want, index_cls.__name__
