"""Multi-level session scenarios: consistency across chained operations.

The per-operation invariants are covered in test_session.py; these
tests chain several zoom levels and verify the *cumulative* behaviour
the paper's Examples 3.3–3.5 imply (visibility persists down a zoom
stack, previously-hidden objects stay hidden through zoom-out chains,
and θ tracks the viewport across the whole trajectory).
"""

import numpy as np
import pytest

from repro import MapSession
from repro.geo import BoundingBox
from repro.geo.distance import pairwise_min_distance


@pytest.fixture(scope="module")
def dataset():
    from repro.datasets import DatasetSpec, generate_clustered

    return generate_clustered(
        DatasetSpec(name="multi", n=8000, n_clusters=6,
                    duplicate_fraction=0.3, seed=21)
    )


def dense_start(dataset, side=0.4):
    from repro.geo.point import Point

    gen = np.random.default_rng(3)
    best = None
    for _ in range(30):
        anchor = int(gen.integers(len(dataset)))
        region = BoundingBox.from_center(
            Point(float(dataset.xs[anchor]), float(dataset.ys[anchor])), side
        )
        count = dataset.index.count_region(region)
        if best is None or count > best[1]:
            best = (region, count)
    return best[0]


class TestZoomStack:
    def test_visibility_persists_down_three_levels(self, dataset):
        session = MapSession(dataset, k=12, theta_fraction=0.01)
        session.start(dense_start(dataset))
        for _ in range(3):
            before = session.visible
            step = session.zoom_in(0.6)
            inside = step.region.contains_many(
                dataset.xs[before], dataset.ys[before]
            )
            assert set(before[inside].tolist()) <= step.result.selected_set

    def test_zoom_in_out_roundtrip_consistency(self, dataset):
        """Zoom in then back out: objects visible at the coarse level
        before the trip that were inside the finer viewport and stayed
        visible there are legitimate candidates again; objects that
        were never visible at the fine level cannot appear inside the
        old fine viewport after zooming out."""
        session = MapSession(dataset, k=10, theta_fraction=0.01)
        session.start(dense_start(dataset))
        fine = session.zoom_in(0.5)
        fine_visible = set(fine.result.selected.tolist())
        coarse = session.zoom_out(2.0)
        for obj in coarse.result.selected:
            x, y = float(dataset.xs[obj]), float(dataset.ys[obj])
            if fine.region.contains_point(x, y):
                assert int(obj) in fine_visible

    def test_theta_tracks_viewport_through_chain(self, dataset):
        session = MapSession(dataset, k=8, theta_fraction=0.02)
        s0 = session.start(dense_start(dataset))
        s1 = session.zoom_in(0.5)
        s2 = session.zoom_in(0.5)
        s3 = session.zoom_out(4.0)
        assert s1.theta == pytest.approx(s0.theta * 0.5)
        assert s2.theta == pytest.approx(s0.theta * 0.25)
        assert s3.theta == pytest.approx(s0.theta)

    def test_every_step_theta_feasible(self, dataset):
        session = MapSession(dataset, k=10, theta_fraction=0.02)
        session.start(dense_start(dataset))
        operations = ("zoom_in", "pan", "zoom_out", "pan", "zoom_in")
        for op in operations:
            if op == "zoom_in":
                step = session.zoom_in(0.5)
            elif op == "zoom_out":
                step = session.zoom_out(2.0)
            else:
                step = session.pan(session.region.width * 0.3, 0.0)
            sel = step.result.selected
            if len(sel) >= 2:
                assert pairwise_min_distance(
                    dataset.xs[sel], dataset.ys[sel]
                ) >= step.theta - 1e-12


class TestPanChains:
    def test_long_pan_keeps_rolling_consistency(self, dataset):
        session = MapSession(dataset, k=10, theta_fraction=0.01)
        session.start(dense_start(dataset, side=0.3))
        previous = session.history[-1]
        for _ in range(5):
            step = session.pan(session.region.width * 0.25, 0.0)
            prev_visible = previous.result.selected
            inside = step.region.contains_many(
                dataset.xs[prev_visible], dataset.ys[prev_visible]
            )
            assert set(prev_visible[inside].tolist()) <= (
                step.result.selected_set
            )
            previous = step

    def test_pan_away_and_back_respects_current_visibility(self, dataset):
        """Panning away and back: consistency is defined against the
        *current* state (the paper's constraints are pairwise between
        consecutive views), so the selection after returning only has
        to honour the intermediate view."""
        session = MapSession(dataset, k=10, theta_fraction=0.01)
        start = session.start(dense_start(dataset, side=0.3))
        away = session.pan(start.region.width * 0.5, 0.0)
        back = session.pan(-start.region.width * 0.5, 0.0)
        assert back.region.overlap_fraction(start.region) == pytest.approx(1.0)
        prev_visible = away.result.selected
        inside = back.region.contains_many(
            dataset.xs[prev_visible], dataset.ys[prev_visible]
        )
        assert set(prev_visible[inside].tolist()) <= back.result.selected_set
