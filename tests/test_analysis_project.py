"""ProjectContext: call graph, async taint, summaries, index cache.

Unit coverage for the cross-module machinery under the project rules
(RL007-RL011): call-site resolution through ``self`` and typed
attributes, hop detection, taint propagation over cycles and through
decorated functions, summary serialization, and the mtime-keyed index
that makes repeated ``--project`` runs cheap.
"""

from __future__ import annotations

import ast
import json
import os
import textwrap
from pathlib import Path

from repro.analysis.engine import module_name_for
from repro.analysis.project import (
    ModuleSummary,
    ProjectContext,
    analysis_token,
    check_project,
    load_index,
    summarize_module,
    write_index,
)
from repro.analysis.suppressions import parse_suppressions


def build_project(sources: dict[str, str]) -> ProjectContext:
    clean = {rel: textwrap.dedent(src) for rel, src in sources.items()}
    summaries = {}
    for rel, src in clean.items():
        summaries[rel] = summarize_module(
            rel, module_name_for(rel), ast.parse(src),
            parse_suppressions(src),
        )
    return ProjectContext(summaries, sources=clean)


class TestCallGraph:
    def test_self_method_resolution(self):
        project = build_project({"src/repro/core/_fx.py": """
            class Engine:
                def run(self):
                    self.step()

                def step(self):
                    pass
        """})
        ref = project.functions["repro.core._fx.Engine.run"]
        target = project.resolve_call(ref.info.calls[0].callee, ref)
        assert target == "repro.core._fx.Engine.step"

    def test_same_module_function_resolution(self):
        project = build_project({"src/repro/core/_fx.py": """
            def outer():
                helper()

            def helper():
                pass
        """})
        ref = project.functions["repro.core._fx.outer"]
        assert (
            project.resolve_call("helper", ref)
            == "repro.core._fx.helper"
        )

    def test_cross_module_via_typed_attribute(self):
        project = build_project({
            "src/repro/core/_a.py": """
                class Store:
                    def load(self):
                        pass
            """,
            "src/repro/core/_b.py": """
                from repro.core._a import Store

                class Facade:
                    def __init__(self):
                        self._store = Store()

                    def fetch(self):
                        self._store.load()
            """,
        })
        ref = project.functions["repro.core._b.Facade.fetch"]
        target = project.resolve_call(ref.info.calls[0].callee, ref)
        assert target == "repro.core._a.Store.load"

    def test_constructor_resolves_to_init(self):
        project = build_project({"src/repro/core/_fx.py": """
            class Thing:
                def __init__(self):
                    pass

            def make():
                Thing()
        """})
        ref = project.functions["repro.core._fx.make"]
        assert (
            project.resolve_call("Thing", ref)
            == "repro.core._fx.Thing.__init__"
        )

    def test_inherited_method_resolves_through_mro(self):
        project = build_project({"src/repro/core/_fx.py": """
            class Base:
                def step(self):
                    pass

            class Child(Base):
                def run(self):
                    self.step()
        """})
        ref = project.functions["repro.core._fx.Child.run"]
        assert (
            project.resolve_call("self.step", ref)
            == "repro.core._fx.Base.step"
        )


class TestAsyncTaint:
    def test_transitive_taint_and_chain(self):
        project = build_project({"src/repro/core/_fx.py": """
            async def handler():
                middle()

            def middle():
                leaf()

            def leaf():
                pass
        """})
        assert project.is_tainted("repro.core._fx.leaf")
        chain = project.taint_chain("repro.core._fx.leaf")
        assert chain == [
            "repro.core._fx.handler",
            "repro.core._fx.middle",
            "repro.core._fx.leaf",
        ]

    def test_to_thread_hop_stops_taint(self):
        project = build_project({"src/repro/core/_fx.py": """
            import asyncio

            async def handler():
                await asyncio.to_thread(worker)

            def worker():
                pass
        """})
        assert not project.is_tainted("repro.core._fx.worker")

    def test_executor_submit_is_a_hop(self):
        project = build_project({"src/repro/core/_fx.py": """
            async def handler(pool):
                pool.submit(worker)

            def worker():
                pass
        """})
        assert not project.is_tainted("repro.core._fx.worker")

    def test_cycle_terminates(self):
        project = build_project({"src/repro/core/_fx.py": """
            async def handler():
                ping()

            def ping():
                pong()

            def pong():
                ping()
        """})
        assert project.is_tainted("repro.core._fx.ping")
        assert project.is_tainted("repro.core._fx.pong")
        # The chain is finite despite the ping <-> pong cycle.
        assert len(project.taint_chain("repro.core._fx.pong")) <= 4

    def test_decorated_async_def_still_seeds(self):
        project = build_project({"src/repro/core/_fx.py": """
            import functools

            def traced(fn):
                return fn

            @traced
            @functools.wraps(print)
            async def handler():
                helper()

            def helper():
                pass
        """})
        assert project.is_tainted("repro.core._fx.helper")

    def test_test_file_coroutines_do_not_seed(self):
        """Async tests drive sync code under asyncio.run on throwaway
        loops; blocking there is not a production bug."""
        project = build_project({
            "src/repro/core/_fx.py": """
                def helper():
                    pass
            """,
            "tests/test_fx.py": """
                async def test_helper():
                    helper()

                def helper():
                    pass
            """,
        })
        assert not any(project.async_taint)

    def test_callback_reference_taints(self):
        """A bare callable passed to a non-hop call is assumed invoked
        in the caller's (async) context."""
        project = build_project({"src/repro/core/_fx.py": """
            async def handler():
                retry(do_work)

            def retry(fn):
                pass

            def do_work():
                pass
        """})
        assert project.is_tainted("repro.core._fx.do_work")


class TestSummaries:
    def test_round_trip(self):
        src = textwrap.dedent("""
            import threading

            POINT = "index.query"

            class Guarded:
                def __init__(self, metrics):
                    self._lock = threading.Lock()
                    self._metrics = metrics

                def bump(self):
                    self._metrics.incr("core.bumps")

            def read(metrics):
                return metrics.count("core.bumps")
        """)
        rel = "src/repro/robustness/_fx.py"
        summary = summarize_module(
            rel, module_name_for(rel), ast.parse(src),
            parse_suppressions(src),
        )
        restored = ModuleSummary.from_dict(summary.to_dict())
        assert restored.module == summary.module
        assert set(restored.functions) == set(summary.functions)
        assert restored.classes["Guarded"].lock_attrs == ["_lock"]
        assert restored.declared_names == {"core.bumps"}
        assert restored.fault_constants == {"index.query"}
        assert [u.name for u in restored.name_uses] == ["core.bumps"]
        # Round-tripped summaries drive the same project analysis.
        roundtripped = ProjectContext({rel: restored})
        direct = ProjectContext({rel: summary})
        assert set(roundtripped.functions) == set(direct.functions)

    def test_deadline_param_detection(self):
        project = build_project({"src/repro/core/_fx.py": """
            def run(k, deadline=None):
                inner(k)

            def inner(k, deadline_s=0.0):
                pass
        """})
        assert (
            project.functions["repro.core._fx.run"].info.deadline_param
            == "deadline"
        )
        call = project.functions["repro.core._fx.run"].info.calls[0]
        assert not call.passes_deadline


class TestIndexCache:
    def _seed_tree(self, root: Path) -> Path:
        mod = root / "src" / "repro" / "core"
        mod.mkdir(parents=True)
        target = mod / "_cached.py"
        target.write_text(textwrap.dedent("""
            def helper():
                return 1
        """), encoding="utf-8")
        return target

    def test_second_run_reuses_summaries(self, tmp_path):
        target = self._seed_tree(tmp_path)
        index = tmp_path / ".repro-lint-index.json"
        stats: dict = {}
        first = check_project(
            [tmp_path / "src"], root=tmp_path, index_path=index,
            stats=stats,
        )
        assert stats == {
            "files": 1, "parsed": 1, "reused": 0,
            "elapsed_s": stats["elapsed_s"],
        }
        stats = {}
        second = check_project(
            [tmp_path / "src"], root=tmp_path, index_path=index,
            stats=stats,
        )
        assert stats["reused"] == 1 and stats["parsed"] == 0
        assert [f.to_dict() for f in first] == [
            f.to_dict() for f in second
        ]

    def test_modified_file_is_reparsed(self, tmp_path):
        target = self._seed_tree(tmp_path)
        index = tmp_path / ".repro-lint-index.json"
        check_project(
            [tmp_path / "src"], root=tmp_path, index_path=index,
        )
        target.write_text("def helper():\n    return 2\n",
                          encoding="utf-8")
        os.utime(target, (1, 1))  # force an mtime change either way
        stats: dict = {}
        check_project(
            [tmp_path / "src"], root=tmp_path, index_path=index,
            stats=stats,
        )
        assert stats["parsed"] == 1 and stats["reused"] == 0

    def test_stale_token_invalidates(self, tmp_path):
        index = tmp_path / "index.json"
        write_index(index, {})
        assert load_index(index) is not None
        data = json.loads(index.read_text(encoding="utf-8"))
        data["token"] = "0" * 16
        index.write_text(json.dumps(data), encoding="utf-8")
        assert load_index(index) is None

    def test_corrupt_index_ignored(self, tmp_path):
        index = tmp_path / "index.json"
        index.write_text("{not json", encoding="utf-8")
        assert load_index(index) is None

    def test_token_is_stable(self):
        assert analysis_token() == analysis_token()
