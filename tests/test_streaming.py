"""Tests for the streaming selection maintenance extension."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Aggregation, StreamingSelector, StreamLengthMismatch
from repro.core.streaming import _UniversePrefix
from repro.geo import BoundingBox
from repro.similarity import EuclideanSimilarity, MatrixSimilarity

REGION = BoundingBox(0.0, 0.0, 1.0, 1.0)


def make_selector(n, k=4, theta=0.05, swap_margin=0.05, seed=0):
    gen = np.random.default_rng(seed)
    sim = MatrixSimilarity.random(n, gen)
    return StreamingSelector(sim, REGION, k=k, theta=theta,
                             swap_margin=swap_margin), gen


class TestValidation:
    def test_parameters(self):
        sim = MatrixSimilarity.random(5, np.random.default_rng(0))
        with pytest.raises(ValueError):
            StreamingSelector(sim, REGION, k=0, theta=0.0)
        with pytest.raises(ValueError):
            StreamingSelector(sim, REGION, k=2, theta=-1.0)
        with pytest.raises(ValueError):
            StreamingSelector(sim, REGION, k=2, theta=0.0, swap_margin=-0.1)

    def test_universe_exhaustion(self):
        selector, gen = make_selector(3)
        for _ in range(3):
            selector.add(gen.random(), gen.random())
        with pytest.raises(ValueError, match="universe"):
            selector.add(0.5, 0.5)

    def test_weight_range(self):
        selector, _gen = make_selector(3)
        with pytest.raises(ValueError):
            selector.add(0.5, 0.5, weight=1.5)


class TestContractFixes:
    """Regression tests for the three streaming contract bugs."""

    def test_extend_rejects_mismatched_lengths(self):
        # Pre-fix, zip() silently truncated to the shortest array and
        # the tail of the longer ones was dropped without a trace.
        selector, gen = make_selector(30)
        with pytest.raises(StreamLengthMismatch, match="equal lengths"):
            selector.extend(gen.random(5), gen.random(3))
        with pytest.raises(StreamLengthMismatch, match="weights=2"):
            selector.extend(gen.random(4), gen.random(4), gen.random(2))
        with pytest.raises(StreamLengthMismatch, match="ts=1"):
            selector.extend(
                gen.random(4), gen.random(4), ts=gen.random(1)
            )
        # Atomic: the rejected batches must not have partially applied.
        assert selector.arrivals == 0

    def test_extend_error_is_value_error(self):
        # Callers catching the historical ValueError keep working.
        assert issubclass(StreamLengthMismatch, ValueError)

    def test_universe_prefix_enforces_bound(self):
        base = MatrixSimilarity.random(10, np.random.default_rng(0))
        prefix = _UniversePrefix(base, 4)
        assert len(prefix) == 4
        # In-bound queries delegate.
        assert prefix.sim(0, 3) == base.sim(0, 3)
        np.testing.assert_array_equal(
            prefix.sims_to(1, np.array([0, 2, 3])),
            base.sims_to(1, np.array([0, 2, 3])),
        )
        # Pre-fix, ids >= n silently read the base model's later rows.
        with pytest.raises(IndexError, match="prefix"):
            prefix.sim(4, 0)
        with pytest.raises(IndexError, match="prefix"):
            prefix.sim(0, 4)
        with pytest.raises(IndexError, match="prefix"):
            prefix.sims_to(4, np.array([0, 1]))
        with pytest.raises(IndexError, match="prefix"):
            prefix.sims_to(0, np.array([1, 9]))
        with pytest.raises(IndexError, match="prefix"):
            prefix.sims_to(0, np.array([-1, 1]))

    def test_avg_rejected_at_construction(self):
        # Pre-fix, AVG was accepted and _aggregate silently fell
        # through to a mean — but AVG is not monotone submodular, so
        # neither the swap maintenance nor reoptimize()'s greedy
        # guarantee applies (problem.py documents it evaluation-only).
        sim = MatrixSimilarity.random(5, np.random.default_rng(0))
        with pytest.raises(ValueError, match="evaluation-only"):
            StreamingSelector(
                sim, REGION, k=2, theta=0.0, aggregation=Aggregation.AVG
            )
        # MAX and SUM still construct.
        for agg in (Aggregation.MAX, Aggregation.SUM):
            StreamingSelector(sim, REGION, k=2, theta=0.0, aggregation=agg)


class TestDeletion:
    def test_remove_unknown_or_dead_id(self):
        selector, gen = make_selector(10)
        selector.add(gen.random(), gen.random())
        with pytest.raises(ValueError, match="unknown stream id"):
            selector.remove(5)
        selector.remove(0)
        with pytest.raises(ValueError, match="already removed"):
            selector.remove(0)

    def test_remove_selected_refills(self):
        selector, gen = make_selector(30, k=3, theta=0.0)
        for _ in range(20):
            selector.add(gen.random(), gen.random())
        assert len(selector.selected) == 3
        victim = selector.selected[0]
        selector.remove(victim)
        assert victim not in selector.selected
        assert victim not in selector._inside
        # Enough survivors exist to refill the freed slot.
        assert len(selector.selected) == 3
        assert selector.removals == 1

    def test_remove_keeps_theta_feasibility(self):
        selector, gen = make_selector(60, k=8, theta=0.1, seed=7)
        for _ in range(40):
            selector.add(gen.random(), gen.random())
        for victim in list(selector.selected)[:3]:
            selector.remove(victim)
        sel = selector.selected
        for i in range(len(sel)):
            for j in range(i + 1, len(sel)):
                d = np.hypot(
                    selector._xs[sel[i]] - selector._xs[sel[j]],
                    selector._ys[sel[i]] - selector._ys[sel[j]],
                )
                assert d >= selector.theta

    def test_expire_before(self):
        selector, gen = make_selector(30, k=4, theta=0.0)
        for t in range(10):
            selector.add(gen.random(), gen.random(), ts=float(t))
        selector.add(gen.random(), gen.random())  # no timestamp
        expired = selector.expire_before(5.0)
        assert expired == 5
        assert selector.expired == 5
        # Timestamped survivors and the untimestamped object remain.
        alive = [i for i, a in enumerate(selector._alive) if a]
        assert alive == [5, 6, 7, 8, 9, 10]
        assert all(i in alive for i in selector.selected)
        # Second sweep at the same cutoff is a no-op.
        assert selector.expire_before(5.0) == 0

    def test_removed_objects_leave_score(self):
        selector, gen = make_selector(20, k=2, theta=0.0)
        ids = [selector.add(gen.random(), gen.random()) for _ in range(6)]
        for obj_id in ids[1:]:
            selector.remove(obj_id)
        # Population is a single object: score is its self-similarity
        # times its weight (weight 1.0 here), i.e. exactly 1.0.
        assert selector.score() == pytest.approx(1.0)

    def test_reoptimize_after_removals_matches_survivors(self):
        selector, gen = make_selector(40, k=5, theta=0.05, seed=11)
        for _ in range(30):
            selector.add(gen.random(), gen.random())
        for victim in [0, 5, 9]:
            if selector._alive[victim]:
                selector.remove(victim)
        selector.reoptimize()
        assert all(selector._alive[s] for s in selector.selected)
        assert set(selector.selected) <= set(selector._inside)


class TestStreamBehaviour:
    def test_outside_objects_not_selected(self):
        selector, _gen = make_selector(10)
        selector.add(5.0, 5.0)  # outside the viewport
        assert selector.selected == []
        assert selector.arrivals == 1

    def test_fills_budget_first(self):
        selector, gen = make_selector(20, k=3, theta=0.0)
        for _ in range(3):
            selector.add(gen.random(), gen.random())
        assert len(selector.selected) == 3

    def test_visibility_respected_throughout(self):
        selector, gen = make_selector(50, k=10, theta=0.1)
        for _ in range(50):
            selector.add(gen.random(), gen.random())
        sel = selector.selected
        for i in range(len(sel)):
            for j in range(i + 1, len(sel)):
                d = np.hypot(
                    selector._xs[sel[i]] - selector._xs[sel[j]],
                    selector._ys[sel[i]] - selector._ys[sel[j]],
                )
                assert d >= selector.theta

    def test_score_monotone_under_swaps(self):
        """Every applied swap strictly improves the score, so the score
        trajectory is non-decreasing except when population growth
        dilutes it."""
        selector, gen = make_selector(60, k=5, theta=0.02)
        last_score = 0.0
        last_swaps = 0
        for _ in range(60):
            selector.add(gen.random(), gen.random())
            score = selector.score()
            if selector.swaps > last_swaps:
                # A swap happened on this arrival: it must have improved
                # the score relative to keeping the old selection.
                last_swaps = selector.swaps
            last_score = score
        assert last_score > 0.0

    def test_reoptimize_never_hurts(self):
        selector, gen = make_selector(80, k=5, theta=0.05, seed=3)
        for _ in range(80):
            selector.add(gen.random(), gen.random())
        maintained = selector.score()
        selector.reoptimize()
        assert selector.score() >= maintained - 1e-9

    def test_extend_batches(self):
        selector, gen = make_selector(30, k=4)
        xs = gen.random(30)
        ys = gen.random(30)
        selector.extend(xs, ys)
        assert selector.arrivals == 30

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 1000))
    def test_tracks_fresh_greedy(self, seed):
        """The maintained selection stays within a constant factor of
        a from-scratch greedy at the end of the stream."""
        n = 40
        gen = np.random.default_rng(seed)
        sim = MatrixSimilarity.random(n, gen)
        selector = StreamingSelector(
            sim, REGION, k=5, theta=0.02, swap_margin=0.05
        )
        pts = gen.random((n, 2))
        for x, y in pts:
            selector.add(float(x), float(y))
        maintained = selector.score()
        selector.reoptimize()
        fresh = selector.score()
        assert maintained >= 0.75 * fresh

    def test_spatial_similarity_stream(self):
        """Works with coordinate-dependent models too: the model's
        universe must be fixed upfront (the expected stream)."""
        gen = np.random.default_rng(5)
        xs = gen.random(40)
        ys = gen.random(40)
        sim = EuclideanSimilarity(xs, ys)
        selector = StreamingSelector(sim, REGION, k=4, theta=0.05)
        for x, y in zip(xs, ys):
            selector.add(float(x), float(y))
        assert len(selector.selected) >= 1
        assert selector.score() > 0.0

    def test_as_query_roundtrip(self):
        selector, _gen = make_selector(5, k=3, theta=0.01)
        query = selector.as_query()
        assert query.k == 3
        assert query.theta == 0.01
        assert query.region == REGION
