"""Tests for the streaming selection maintenance extension."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import StreamingSelector
from repro.geo import BoundingBox
from repro.similarity import EuclideanSimilarity, MatrixSimilarity

REGION = BoundingBox(0.0, 0.0, 1.0, 1.0)


def make_selector(n, k=4, theta=0.05, swap_margin=0.05, seed=0):
    gen = np.random.default_rng(seed)
    sim = MatrixSimilarity.random(n, gen)
    return StreamingSelector(sim, REGION, k=k, theta=theta,
                             swap_margin=swap_margin), gen


class TestValidation:
    def test_parameters(self):
        sim = MatrixSimilarity.random(5, np.random.default_rng(0))
        with pytest.raises(ValueError):
            StreamingSelector(sim, REGION, k=0, theta=0.0)
        with pytest.raises(ValueError):
            StreamingSelector(sim, REGION, k=2, theta=-1.0)
        with pytest.raises(ValueError):
            StreamingSelector(sim, REGION, k=2, theta=0.0, swap_margin=-0.1)

    def test_universe_exhaustion(self):
        selector, gen = make_selector(3)
        for _ in range(3):
            selector.add(gen.random(), gen.random())
        with pytest.raises(ValueError, match="universe"):
            selector.add(0.5, 0.5)

    def test_weight_range(self):
        selector, _gen = make_selector(3)
        with pytest.raises(ValueError):
            selector.add(0.5, 0.5, weight=1.5)


class TestStreamBehaviour:
    def test_outside_objects_not_selected(self):
        selector, _gen = make_selector(10)
        selector.add(5.0, 5.0)  # outside the viewport
        assert selector.selected == []
        assert selector.arrivals == 1

    def test_fills_budget_first(self):
        selector, gen = make_selector(20, k=3, theta=0.0)
        for _ in range(3):
            selector.add(gen.random(), gen.random())
        assert len(selector.selected) == 3

    def test_visibility_respected_throughout(self):
        selector, gen = make_selector(50, k=10, theta=0.1)
        for _ in range(50):
            selector.add(gen.random(), gen.random())
        sel = selector.selected
        for i in range(len(sel)):
            for j in range(i + 1, len(sel)):
                d = np.hypot(
                    selector._xs[sel[i]] - selector._xs[sel[j]],
                    selector._ys[sel[i]] - selector._ys[sel[j]],
                )
                assert d >= selector.theta

    def test_score_monotone_under_swaps(self):
        """Every applied swap strictly improves the score, so the score
        trajectory is non-decreasing except when population growth
        dilutes it."""
        selector, gen = make_selector(60, k=5, theta=0.02)
        last_score = 0.0
        last_swaps = 0
        for _ in range(60):
            selector.add(gen.random(), gen.random())
            score = selector.score()
            if selector.swaps > last_swaps:
                # A swap happened on this arrival: it must have improved
                # the score relative to keeping the old selection.
                last_swaps = selector.swaps
            last_score = score
        assert last_score > 0.0

    def test_reoptimize_never_hurts(self):
        selector, gen = make_selector(80, k=5, theta=0.05, seed=3)
        for _ in range(80):
            selector.add(gen.random(), gen.random())
        maintained = selector.score()
        selector.reoptimize()
        assert selector.score() >= maintained - 1e-9

    def test_extend_batches(self):
        selector, gen = make_selector(30, k=4)
        xs = gen.random(30)
        ys = gen.random(30)
        selector.extend(xs, ys)
        assert selector.arrivals == 30

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 1000))
    def test_tracks_fresh_greedy(self, seed):
        """The maintained selection stays within a constant factor of
        a from-scratch greedy at the end of the stream."""
        n = 40
        gen = np.random.default_rng(seed)
        sim = MatrixSimilarity.random(n, gen)
        selector = StreamingSelector(
            sim, REGION, k=5, theta=0.02, swap_margin=0.05
        )
        pts = gen.random((n, 2))
        for x, y in pts:
            selector.add(float(x), float(y))
        maintained = selector.score()
        selector.reoptimize()
        fresh = selector.score()
        assert maintained >= 0.75 * fresh

    def test_spatial_similarity_stream(self):
        """Works with coordinate-dependent models too: the model's
        universe must be fixed upfront (the expected stream)."""
        gen = np.random.default_rng(5)
        xs = gen.random(40)
        ys = gen.random(40)
        sim = EuclideanSimilarity(xs, ys)
        selector = StreamingSelector(sim, REGION, k=4, theta=0.05)
        for x, y in zip(xs, ys):
            selector.add(float(x), float(y))
        assert len(selector.selected) >= 1
        assert selector.score() > 0.0

    def test_as_query_roundtrip(self):
        selector, _gen = make_selector(5, k=3, theta=0.01)
        query = selector.as_query()
        assert query.k == 3
        assert query.theta == 0.01
        assert query.region == REGION
