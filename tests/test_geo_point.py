"""Tests for repro.geo.point."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.geo import Point

finite = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)


class TestPointBasics:
    def test_unpacking(self):
        x, y = Point(1.5, -2.0)
        assert (x, y) == (1.5, -2.0)

    def test_as_tuple(self):
        assert Point(0.25, 0.75).as_tuple() == (0.25, 0.75)

    def test_equality_and_hash(self):
        assert Point(1.0, 2.0) == Point(1.0, 2.0)
        assert hash(Point(1.0, 2.0)) == hash(Point(1.0, 2.0))
        assert Point(1.0, 2.0) != Point(2.0, 1.0)

    def test_frozen(self):
        with pytest.raises(AttributeError):
            Point(0.0, 0.0).x = 1.0

    def test_arithmetic(self):
        a = Point(1.0, 2.0)
        b = Point(0.5, -1.0)
        assert a + b == Point(1.5, 1.0)
        assert a - b == Point(0.5, 3.0)
        assert a * 2.0 == Point(2.0, 4.0)
        assert 2.0 * a == Point(2.0, 4.0)

    def test_translated(self):
        assert Point(1.0, 1.0).translated(0.5, -0.5) == Point(1.5, 0.5)

    def test_midpoint(self):
        assert Point(0.0, 0.0).midpoint(Point(2.0, 4.0)) == Point(1.0, 2.0)


class TestPointDistance:
    def test_345_triangle(self):
        assert Point(0.0, 0.0).distance_to(Point(3.0, 4.0)) == pytest.approx(5.0)

    def test_squared_distance(self):
        assert Point(0.0, 0.0).squared_distance_to(
            Point(3.0, 4.0)
        ) == pytest.approx(25.0)

    def test_distance_to_self_is_zero(self):
        p = Point(1.23, 4.56)
        assert p.distance_to(p) == 0.0

    @given(finite, finite, finite, finite)
    def test_symmetry(self, x1, y1, x2, y2):
        a, b = Point(x1, y1), Point(x2, y2)
        assert a.distance_to(b) == pytest.approx(b.distance_to(a))

    @given(finite, finite, finite, finite, finite, finite)
    def test_triangle_inequality(self, x1, y1, x2, y2, x3, y3):
        a, b, c = Point(x1, y1), Point(x2, y2), Point(x3, y3)
        assert a.distance_to(c) <= a.distance_to(b) + b.distance_to(c) + 1e-9

    @given(finite, finite, finite, finite)
    def test_squared_consistent_with_distance(self, x1, y1, x2, y2):
        a, b = Point(x1, y1), Point(x2, y2)
        assert math.sqrt(a.squared_distance_to(b)) == pytest.approx(
            a.distance_to(b), abs=1e-9
        )
