"""Overload invariants: sheds are pure refusals, deadlines are honored.

Two properties pin down the service's overload behavior:

1. **Sheds never mutate** — a request rejected by admission (any
   reason) must leave session state, selection history, and the
   selection-visible metrics exactly as they were.  Driven as a
   property-style sweep: many seeds, random interleavings of admitted
   and shed traffic, every outcome cross-checked against a direct
   replay of only the admitted operations.
2. **Deadline budgets bound latency** — under a 16-client closed-loop
   storm, no request (admitted or shed) may exceed its deadline budget
   by more than a grace window that covers one in-flight selection plus
   scheduling noise.
"""

import asyncio

import numpy as np
import pytest

from repro import GeoDataset, MapSession
from repro.geo import BoundingBox
from repro.service import (
    AdmissionController,
    SelectionService,
    ServiceRequest,
)

START = BoundingBox(0.25, 0.25, 0.75, 0.75)


def make_dataset(n=900, seed=17):
    gen = np.random.default_rng(seed)
    return GeoDataset.build(
        gen.random(n), gen.random(n), weights=gen.random(n)
    )


OPS = ("zoom_in", "zoom_out", "pan")


def apply_direct(session, op):
    if op == "zoom_in":
        return session.zoom_in(scale=0.5)
    if op == "zoom_out":
        return session.zoom_out(scale=2.0)
    return session.pan(dx=0.03)


def nav_count(metrics):
    """Metrics-visible navigation count (sum of session.op.* counters)."""
    return sum(
        value for name, value in metrics.snapshot().items()
        if name.startswith("session.op.")
    )


def service_request(sid, op):
    if op == "zoom_in":
        return ServiceRequest(op="zoom_in", session_id=sid,
                              params={"scale": 0.5})
    if op == "zoom_out":
        return ServiceRequest(op="zoom_out", session_id=sid,
                              params={"scale": 2.0})
    return ServiceRequest(op="pan", session_id=sid, params={"dx": 0.03})


class TestShedsNeverMutate:
    @pytest.mark.parametrize("seed", range(8))
    def test_random_shed_interleavings_leave_state_untouched(self, seed):
        """Property sweep: interleave admitted ops with forced sheds.

        A "forced shed" is produced by saturating a max_concurrency=1 /
        max_queue_depth=0 controller with a slot-holder, so the victim
        request is refused at admission.  After every shed the session
        must be byte-identical to a direct session that only ever saw
        the admitted operations.
        """

        async def go():
            dataset = make_dataset()
            service = SelectionService(
                {"a": dataset},
                session_options={"k": 8, "workers": 0},
                admission=AdmissionController(
                    max_concurrency=1, max_queue_depth=0
                ),
                default_deadline_ms=10_000.0,
            )
            started = await service.handle(
                ServiceRequest(op="start", params={
                    "region": [START.minx, START.miny, START.maxx, START.maxy]
                })
            )
            assert started.ok
            sid = started.session_id

            direct = MapSession(dataset, k=8)
            direct_steps = [direct.start(START)]
            assert started.selection == [
                int(i) for i in direct_steps[-1].visible
            ]

            rng = np.random.default_rng(seed)
            plan = [
                (OPS[int(rng.integers(len(OPS)))], bool(rng.integers(2)))
                for _ in range(12)
            ]
            baseline = nav_count(service.metrics)

            for op, shed_it in plan:
                if shed_it:
                    release = asyncio.Event()
                    held = asyncio.Event()

                    async def hold_slot():
                        async with service.admission.admit():
                            held.set()
                            await release.wait()

                    holder = asyncio.ensure_future(hold_slot())
                    await held.wait()
                    response = await service.handle(service_request(sid, op))
                    release.set()
                    await holder
                    assert not response.ok
                    assert response.error_type == "OverloadShed"
                    assert response.shed_reason == "queue_full"
                    # Invariant: the shed left no trace in the session.
                    entry = service.sessions.get(sid)
                    assert entry.steps == len(direct_steps)
                    assert len(entry.session.history) == len(direct_steps)
                    assert (
                        nav_count(service.metrics) - baseline
                        == len(direct_steps) - 1
                    )
                else:
                    response = await service.handle(service_request(sid, op))
                    assert response.ok
                    direct_steps.append(apply_direct(direct, op))
                    assert response.selection == [
                        int(i) for i in direct_steps[-1].visible
                    ]

            # Final state: the service session replayed exactly the
            # admitted prefix, nothing more.
            entry = service.sessions.get(sid)
            assert [s.operation for s in entry.session.history] == [
                s.operation for s in direct_steps
            ]
            assert [int(i) for i in entry.session.visible] == [
                int(i) for i in direct.visible
            ]
            direct.close()
            await service.aclose()

        asyncio.run(go())


class TestDeadlineBudgets:
    def test_16_client_storm_honors_deadline_plus_grace(self):
        """No request may exceed deadline_ms by more than the grace.

        The grace window covers the one selection that may already be
        in flight when the deadline expires (the service never cancels
        a running numpy kernel mid-flight) plus event-loop scheduling
        noise.  Everything queued behind it must shed within budget.
        """

        async def go():
            dataset = make_dataset(n=1500)
            deadline_ms = 250.0
            # One step on this dataset/k costs a few ms; the grace
            # covers a worst-case in-flight step plus scheduler noise.
            grace_ms = 700.0
            service = SelectionService(
                {"a": dataset},
                session_options={"k": 8, "workers": 0},
                admission=AdmissionController(
                    max_concurrency=2,
                    max_queue_depth=8,
                    queue_timeout_s=0.1,
                ),
                default_deadline_ms=deadline_ms,
            )
            loop = asyncio.get_running_loop()
            overruns = []
            outcomes = {"ok": 0, "shed": 0, "other": 0}

            async def client(client_id):
                started = await service.handle(
                    ServiceRequest(op="start", params={
                        "region": [0.2, 0.2, 0.8, 0.8],
                    })
                )
                sid = started.session_id if started.ok else None
                rng = np.random.default_rng(client_id)
                for _ in range(6):
                    op = OPS[int(rng.integers(len(OPS)))]
                    before = loop.time()
                    if sid is None:
                        response = await service.handle(
                            ServiceRequest(op="start", params={
                                "region": [0.2, 0.2, 0.8, 0.8],
                            })
                        )
                        if response.ok:
                            sid = response.session_id
                    else:
                        response = await service.handle(
                            service_request(sid, op)
                        )
                    elapsed_ms = (loop.time() - before) * 1000.0
                    if elapsed_ms > deadline_ms + grace_ms:
                        overruns.append(
                            (client_id, response.op, elapsed_ms)
                        )
                    if response.ok:
                        outcomes["ok"] += 1
                    elif response.error_type == "OverloadShed":
                        outcomes["shed"] += 1
                    else:
                        outcomes["other"] += 1

            await asyncio.wait_for(
                asyncio.gather(*(client(i) for i in range(16))), 120.0
            )
            assert overruns == [], f"deadline blowouts: {overruns[:5]}"
            # The storm must actually have exercised both outcomes.
            assert outcomes["ok"] > 0
            assert outcomes["shed"] > 0, outcomes
            await service.aclose()

        asyncio.run(go())
