"""Geometry tests for the zoom-pyramid tile scheme."""

import numpy as np
import pytest

from repro.geo import BoundingBox
from repro.index import GridIndex
from repro.tiles import MAX_ZOOM_LIMIT, TileKey, TileScheme


@pytest.fixture
def scheme() -> TileScheme:
    return TileScheme(frame=BoundingBox(0.0, 0.0, 1.0, 1.0), max_zoom=3)


@pytest.fixture
def offset_scheme() -> TileScheme:
    """Non-unit, non-origin frame: catches minx/miny arithmetic slips."""
    return TileScheme(frame=BoundingBox(-2.0, 1.0, 6.0, 5.0), max_zoom=2)


class TestConstruction:
    def test_rejects_bad_zoom(self):
        with pytest.raises(ValueError):
            TileScheme(frame=BoundingBox.unit(), max_zoom=-1)
        with pytest.raises(ValueError):
            TileScheme(frame=BoundingBox.unit(), max_zoom=MAX_ZOOM_LIMIT + 1)

    def test_rejects_degenerate_frame(self):
        with pytest.raises(ValueError):
            TileScheme(frame=BoundingBox(0.0, 0.0, 0.0, 1.0))

    def test_from_grid_index_alignment(self):
        gen = np.random.default_rng(4)
        index = GridIndex(gen.random(100), gen.random(100), cells=8)
        scheme = TileScheme.from_grid_index(index)
        # 8 bins divide evenly down to 2^3 tiles per axis.
        assert scheme.max_zoom == 3

    def test_from_grid_index_odd_cells(self):
        gen = np.random.default_rng(4)
        index = GridIndex(gen.random(100), gen.random(100), cells=9)
        assert TileScheme.from_grid_index(index).max_zoom == 0


class TestGeometry:
    def test_level_tiling_partitions_frame(self, offset_scheme):
        frame = offset_scheme.frame
        for zoom in range(offset_scheme.max_zoom + 1):
            boxes = [
                offset_scheme.tile_box(key)
                for key in offset_scheme.keys_at(zoom)
            ]
            assert len(boxes) == 4**zoom
            area = sum(b.width * b.height for b in boxes)
            assert area == pytest.approx(frame.width * frame.height)
            union = boxes[0]
            for b in boxes[1:]:
                union = union.union(b)
            assert union.contains_box(frame)

    def test_neighborhood_box_spans_three_tiles(self, scheme):
        key = TileKey(2, 1, 2)
        nb = scheme.neighborhood_box(key)
        assert nb.width == pytest.approx(3 * scheme.tile_width(2))
        assert nb.contains_box(scheme.tile_box(key))

    def test_neighborhood_box_unclipped_at_corner(self, scheme):
        # The guarantee must hold for viewports hanging off the frame,
        # so the corner neighborhood extends past the frame edge.
        nb = scheme.neighborhood_box(TileKey(2, 0, 0))
        assert nb.minx < scheme.frame.minx
        assert nb.miny < scheme.frame.miny

    def test_neighborhood_keys_interior_and_corner(self, scheme):
        assert len(scheme.neighborhood_keys(TileKey(2, 1, 1))) == 9
        corner = scheme.neighborhood_keys(TileKey(2, 0, 0))
        assert len(corner) == 4
        assert TileKey(2, 0, 0) in corner
        edge = scheme.neighborhood_keys(TileKey(2, 0, 1))
        assert len(edge) == 6

    def test_neighborhood_keys_cover_clipped_neighborhood(self, scheme):
        # The per-source decomposition must jointly cover the
        # neighborhood box within the frame — the validity condition
        # for partial-source bound sums.
        for key in scheme.keys_at(2):
            nb = scheme.neighborhood_box(key).clipped_to(scheme.frame)
            union = None
            for source in scheme.neighborhood_keys(key):
                box = scheme.tile_box(source)
                union = box if union is None else union.union(box)
            assert union.contains_box(nb)

    def test_children_quadrants(self, scheme):
        kids = scheme.children(TileKey(1, 1, 0))
        assert kids == [
            TileKey(2, 2, 0),
            TileKey(2, 3, 0),
            TileKey(2, 2, 1),
            TileKey(2, 3, 1),
        ]
        parent = scheme.tile_box(TileKey(1, 1, 0))
        for kid in kids:
            assert parent.contains_box(scheme.tile_box(kid))

    def test_children_empty_at_max_zoom(self, scheme):
        assert scheme.children(TileKey(3, 0, 0)) == []

    def test_key_validation(self, scheme):
        with pytest.raises(ValueError):
            scheme.tile_box(TileKey(4, 0, 0))
        with pytest.raises(ValueError):
            scheme.tile_box(TileKey(2, 4, 0))
        with pytest.raises(ValueError):
            scheme.tile_box(TileKey(2, 0, -1))


class TestBinning:
    def test_every_point_bins_into_its_tile(self, offset_scheme):
        gen = np.random.default_rng(17)
        frame = offset_scheme.frame
        xs = frame.minx + gen.random(300) * frame.width
        ys = frame.miny + gen.random(300) * frame.height
        for zoom in range(offset_scheme.max_zoom + 1):
            cols = offset_scheme.tile_cols(zoom, xs)
            rows = offset_scheme.tile_rows(zoom, ys)
            for x, y, col, row in zip(xs, ys, cols, rows):
                box = offset_scheme.tile_box(TileKey(zoom, int(col), int(row)))
                assert box.contains_point(float(x), float(y))

    def test_boundary_points_bin_to_exactly_one_tile(self, scheme):
        # A point on the shared edge of two tiles must land in exactly
        # one (the right/upper one, by floor binning) — the store's
        # one-tile-per-object invariant.
        key = scheme.key_of(2, 0.5, 0.5)
        assert key == TileKey(2, 2, 2)
        # The frame's own max corner clips into the last tile.
        assert scheme.key_of(2, 1.0, 1.0) == TileKey(2, 3, 3)

    def test_cell_ids_match_key_of(self, scheme):
        gen = np.random.default_rng(23)
        xs, ys = gen.random(50), gen.random(50)
        cells = scheme.cell_ids(2, xs, ys)
        n = scheme.tiles_per_axis(2)
        for x, y, cell in zip(xs, ys, cells):
            key = scheme.key_of(2, float(x), float(y))
            assert int(cell) == key.y * n + key.x


class TestViewportResolution:
    def test_zoom_for_picks_deepest_dominating_level(self, scheme):
        # A viewport barely smaller than a level-2 tile resolves to 2.
        region = BoundingBox(0.1, 0.1, 0.34, 0.34)
        assert scheme.zoom_for(region) == 2
        # Bigger than a level-1 tile but smaller than the frame: 0.
        region = BoundingBox(0.0, 0.0, 0.6, 0.6)
        assert scheme.zoom_for(region) == 0

    def test_zoom_for_oversized_region_is_none(self, scheme):
        assert scheme.zoom_for(BoundingBox(-0.5, 0.0, 1.5, 1.0)) is None

    def test_zoom_for_caps_at_max_zoom(self, scheme):
        tiny = BoundingBox(0.5, 0.5, 0.5001, 0.5001)
        assert scheme.zoom_for(tiny) == scheme.max_zoom

    def test_zoom_for_region_never_needs_more_than_2x2_tiles(self, scheme):
        gen = np.random.default_rng(5)
        for _ in range(50):
            x0, y0 = gen.random(2) * 0.7
            w, h = 0.01 + gen.random(2) * 0.28
            region = BoundingBox(x0, y0, x0 + w, y0 + h)
            zoom = scheme.zoom_for(region)
            keys = scheme.keys_overlapping(zoom, region)
            assert 1 <= len(keys) <= 4

    def test_neighborhood_guarantee_at_resolved_zoom(self, scheme):
        # Lemma-5.1 transfer: at the resolved zoom, every overlapped
        # tile's 3x3 neighborhood contains the whole viewport.
        gen = np.random.default_rng(6)
        for _ in range(50):
            x0, y0 = gen.random(2) * 0.7
            w, h = 0.01 + gen.random(2) * 0.28
            region = BoundingBox(x0, y0, x0 + w, y0 + h)
            zoom = scheme.zoom_for(region)
            for key in scheme.keys_overlapping(zoom, region):
                assert scheme.neighborhood_box(key).contains_box(region)

    def test_keys_overlapping_exact(self, scheme):
        region = BoundingBox(0.26, 0.26, 0.49, 0.49)
        keys = scheme.keys_overlapping(2, region)
        assert set(keys) == {TileKey(2, 1, 1)}
        region = BoundingBox(0.24, 0.24, 0.26, 0.26)
        assert len(scheme.keys_overlapping(2, region)) == 4
