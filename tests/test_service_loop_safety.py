"""Event-loop safety and teardown containment in the service layer.

Regression tests for three defect classes the project-mode lint
(RL007/RL009) surfaced:

* blocking work reachable from coroutines — an armed admit-latency
  fault used ``time.sleep`` on the loop, and ``start`` ran session
  creation (pool warm-up: worker spawn, shared-memory export) inline;
* teardown leaks — one session whose ``close()`` raised aborted
  ``close_all``, leaking every session behind it plus the shared
  pools;
* ``ServiceHTTPServer.stop()`` re-raising a dead sweeper's exception
  before closing the listening socket or the service.

Each test fails against the pre-fix code.
"""

import asyncio
import time

import numpy as np
import pytest

from repro import GeoDataset, MetricsRegistry
from repro.robustness import FaultInjector
from repro.robustness.faults import SERVICE_ADMIT
from repro.service import (
    SelectionService,
    ServiceHTTPServer,
    ServiceRequest,
    SessionManager,
)


def make_dataset(n=400, seed=11):
    gen = np.random.default_rng(seed)
    return GeoDataset.build(
        gen.random(n), gen.random(n), weights=gen.random(n)
    )


async def heartbeat(ticks, interval_s=0.01):
    """Count loop iterations; starves iff something blocks the loop."""
    while True:
        await asyncio.sleep(interval_s)
        ticks.append(time.perf_counter())


class TestLoopNotBlocked:
    def test_admit_latency_yields_the_loop(self):
        """An armed admit-latency fault must not stall other requests.

        Pre-fix, ``AdmissionTicket.__aenter__`` called the injector's
        sync ``check`` whose latency is ``time.sleep`` — every
        coroutine on the loop froze for the injected delay.
        """
        injector = FaultInjector().arm(
            SERVICE_ADMIT, latency_s=0.25, error=None
        )
        service = SelectionService(
            {"a": make_dataset()},
            fault_injector=injector,
            default_deadline_ms=5000.0,
            session_options={"k": 5, "workers": 0},
        )

        async def go():
            ticks = []
            beat = asyncio.ensure_future(heartbeat(ticks))
            try:
                response = await service.handle(ServiceRequest(op="start"))
            finally:
                beat.cancel()
            assert response.ok
            return len(ticks)

        try:
            ticks = asyncio.run(go())
        finally:
            service.close()
        # 0.25s of injected latency at a 10ms heartbeat: well over five
        # ticks when the sleep is async, exactly zero when it blocks.
        assert ticks >= 5

    def test_session_creation_runs_off_loop(self):
        """``start`` must hop session creation off the event loop.

        Creation warms the dataset's shared worker pool — seconds of
        process spawn and model export in real deployments, simulated
        here by a slow ``SessionManager.create``.  Pre-fix the service
        called it inline and the loop froze for the duration.
        """
        service = SelectionService(
            {"a": make_dataset()},
            default_deadline_ms=5000.0,
            session_options={"k": 5, "workers": 0},
        )
        real_create = service.sessions.create

        def slow_create(*args, **kwargs):
            time.sleep(0.25)
            return real_create(*args, **kwargs)

        service.sessions.create = slow_create

        async def go():
            ticks = []
            beat = asyncio.ensure_future(heartbeat(ticks))
            try:
                response = await service.handle(ServiceRequest(op="start"))
            finally:
                beat.cancel()
            assert response.ok
            return len(ticks)

        try:
            ticks = asyncio.run(go())
        finally:
            service.close()
        assert ticks >= 5


class TestTeardownContainment:
    def _manager(self, metrics):
        return SessionManager(
            {"a": make_dataset()},
            session_options={"k": 5, "workers": 0},
            metrics=metrics,
        )

    def test_close_all_survives_a_raising_session(self):
        """One bad ``close()`` must not leak the sessions behind it.

        Pre-fix ``close_all`` propagated the first close error,
        leaving later sessions (and the shared pools) open forever —
        the manager dict was already cleared, so nothing could ever
        reach them again.
        """
        metrics = MetricsRegistry()
        manager = self._manager(metrics)
        entries = [manager.create() for _ in range(3)]
        closed = []

        def make_close(entry, fail):
            real = entry.session.close

            def close():
                if fail:
                    raise RuntimeError("teardown bug")
                closed.append(entry.session_id)
                real()

            return close

        for i, entry in enumerate(entries):
            entry.session.close = make_close(entry, fail=(i == 0))

        manager.close_all()  # must not raise
        assert sorted(closed) == [e.session_id for e in entries[1:]]
        assert metrics.count("service.sessions.close_errors") == 1
        assert metrics.count("service.sessions.closed") == 2

    def test_evict_expired_survives_a_raising_session(self):
        metrics = MetricsRegistry()
        now = [0.0]
        manager = SessionManager(
            {"a": make_dataset()},
            session_options={"k": 5, "workers": 0},
            ttl_s=10.0,
            clock=lambda: now[0],
            metrics=metrics,
        )
        bad, good = manager.create(), manager.create()
        bad.session.close = lambda: (_ for _ in ()).throw(
            RuntimeError("teardown bug")
        )
        now[0] = 60.0
        evicted = manager.evict_expired()
        assert sorted(evicted) == sorted(
            [bad.session_id, good.session_id]
        )
        assert manager.count == 0
        assert metrics.count("service.sessions.close_errors") == 1
        assert metrics.count("service.sessions.evicted") == 1

    def test_close_all_closes_pools_even_on_broad_failure(self):
        """Shared pools must be released even past containment.

        ``_close_session`` only contains ``Exception``; a
        ``KeyboardInterrupt``-class escape mid-loop must still reach
        the pool teardown via the ``finally``.
        """
        manager = self._manager(MetricsRegistry())
        entry = manager.create()

        class Torn(BaseException):
            pass

        entry.session.close = lambda: (_ for _ in ()).throw(Torn())
        pool_closed = []
        manager._pools["a"] = type(
            "FakePool", (), {"close": lambda self: pool_closed.append(True)}
        )()
        with pytest.raises(Torn):
            manager.close_all()
        assert pool_closed == [True]


class TestHTTPStop:
    def test_stop_tears_down_after_sweeper_crash(self):
        """A dead sweeper must not abort server/service teardown.

        Pre-fix ``stop()`` awaited the cancelled sweeper first and a
        non-``CancelledError`` crash re-raised immediately — the
        listening socket stayed open and ``service.aclose()`` never
        ran.  The crash must still surface (it is a real bug in the
        eviction path), but only after teardown completes.
        """
        service = SelectionService(
            {"a": make_dataset()},
            session_options={"k": 5, "workers": 0},
            session_ttl_s=0.05,
        )

        def broken_sweep(*args, **kwargs):
            raise RuntimeError("eviction bug")

        service.sessions.evict_expired = broken_sweep

        async def go():
            server = ServiceHTTPServer(
                service, port=0, sweep_interval_s=0.01
            )
            await server.start()
            assert server._sweeper is not None
            # Let the sweeper tick once and die on the broken sweep.
            for _ in range(100):
                if server._sweeper.done():
                    break
                await asyncio.sleep(0.01)
            assert server._sweeper.done()
            with pytest.raises(RuntimeError, match="eviction bug"):
                await server.stop()
            assert server._server is None

        asyncio.run(go())
        # The service went down despite the sweeper's crash.
        assert service._closed
