"""Per-rule fixtures for the repro-lint analyzer.

Every rule gets three snippets: one true positive, one true negative,
and one honored (justified) suppression.  The RL001 positive is the
pre-PR-4 :class:`CircuitBreaker` race verbatim in miniature — the
``state`` property advanced the automaton without the lock while
``record_failure`` mutated the same attributes under it — proving the
analyzer would have caught the bug the PR 4 rewrite fixed at runtime.
"""

from __future__ import annotations

import textwrap

import pytest

from repro.analysis import check_source, resolve_rules
from repro.analysis.registry import META_RULE, all_rules


def run_rule(rule_id, source, rel="src/repro/core/_fixture.py"):
    return check_source(
        textwrap.dedent(source),
        rules=resolve_rules(select=[rule_id]),
        rel=rel,
    )


def codes(findings):
    return [f.rule for f in findings]


class TestRegistry:
    def test_six_rules_registered(self):
        rules = all_rules()
        expected = {"RL001", "RL002", "RL003", "RL004", "RL005", "RL006"}
        assert expected <= set(rules)
        assert len(rules) >= 6

    def test_unknown_rule_id_rejected(self):
        with pytest.raises(ValueError, match="unknown rule id"):
            resolve_rules(select=["RL999"])
        with pytest.raises(ValueError, match="unknown rule id"):
            resolve_rules(ignore=["RLXX"])

    def test_ignore_filters(self):
        chosen = resolve_rules(ignore=["RL003"])
        assert "RL003" not in [r.id for r in chosen]


PRE_PR4_BREAKER_RACE = """
    import threading

    class CircuitBreaker:
        def __init__(self):
            self._lock = threading.Lock()
            self._state = "closed"
            self._failures = 0

        @property
        def state(self):
            if self._state == "open":
                self._state = "half_open"
            return self._state

        def record_failure(self):
            with self._lock:
                self._failures += 1
                self._state = "open"
"""


class TestRL001LockDiscipline:
    def test_positive_pre_pr4_breaker_race(self):
        findings = run_rule("RL001", PRE_PR4_BREAKER_RACE)
        assert codes(findings) == ["RL001"]
        [finding] = findings
        assert "'_state'" in finding.message
        assert "CircuitBreaker" in finding.message
        # The unlocked mutation inside the state property is the site.
        assert finding.line_text == 'self._state = "half_open"'

    def test_negative_all_mutations_locked(self):
        findings = run_rule("RL001", """
            import threading

            class Breaker:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._state = "closed"

                def _advance_locked(self):
                    self._state = "half_open"

                def record_failure(self):
                    with self._lock:
                        self._state = "open"
                        self._advance_locked()
        """)
        assert findings == []

    def test_negative_no_lock_owned(self):
        findings = run_rule("RL001", """
            class Plain:
                def __init__(self):
                    self._state = "closed"

                def flip(self):
                    self._state = "open"
        """)
        assert findings == []

    def test_positive_container_mutation(self):
        findings = run_rule("RL001", """
            import threading

            class Registry:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._counters = {}

                def incr(self, name):
                    with self._lock:
                        self._counters[name] = 1

                def reset(self):
                    self._counters.clear()
        """)
        assert codes(findings) == ["RL001"]
        assert "'_counters'" in findings[0].message

    def test_suppression_honored(self):
        findings = run_rule("RL001", """
            import threading

            class Breaker:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._hits = 0

                def locked_touch(self):
                    with self._lock:
                        self._hits += 1

                def unlocked_touch(self):
                    # repro-lint: disable=RL001 -- single-thread setup phase, documented in the class docstring
                    self._hits += 1
        """)
        assert findings == []

    def test_positive_asyncio_lock_unlocked_mutation(self):
        findings = run_rule("RL001", """
            import asyncio

            class Manager:
                def __init__(self):
                    self._lock = asyncio.Lock()
                    self._entries = {}

                async def add(self, key):
                    async with self._lock:
                        self._entries[key] = 1

                async def drop_all(self):
                    self._entries.clear()
        """)
        assert codes(findings) == ["RL001"]
        [finding] = findings
        assert "'_entries'" in finding.message
        assert finding.line_text == "self._entries.clear()"

    def test_negative_asyncio_lock_all_mutations_locked(self):
        findings = run_rule("RL001", """
            import asyncio

            class Manager:
                def __init__(self):
                    self._lock = asyncio.Lock()
                    self._entries = {}
                    self._closed = False

                async def add(self, key):
                    async with self._lock:
                        self._entries[key] = 1

                async def close(self):
                    async with self._lock:
                        self._closed = True
                        self._entries.clear()
        """)
        assert findings == []

    def test_negative_async_methods_with_locked_helper(self):
        findings = run_rule("RL001", """
            import asyncio

            class Counter:
                def __init__(self):
                    self._lock = asyncio.Lock()
                    self._n = 0

                def _bump_locked(self):
                    self._n += 1

                async def bump(self):
                    async with self._lock:
                        self._bump_locked()
        """)
        assert findings == []


class TestRL002Determinism:
    def test_positive_wall_clock(self):
        findings = run_rule("RL002", """
            import time

            def score():
                return time.perf_counter()
        """)
        assert codes(findings) == ["RL002"]
        assert "perf_counter" in findings[0].message

    def test_positive_unseeded_default_rng(self):
        findings = run_rule("RL002", """
            import numpy as np

            def pick():
                rng = np.random.default_rng()
                return rng.random()
        """)
        assert codes(findings) == ["RL002"]
        assert "seed" in findings[0].message

    def test_positive_legacy_global_rng(self):
        findings = run_rule("RL002", """
            import numpy as np
            import random

            def jitter():
                return np.random.rand() + random.random()
        """)
        assert sorted(codes(findings)) == ["RL002", "RL002"]

    def test_negative_seeded_generator(self):
        findings = run_rule("RL002", """
            import numpy as np

            def pick(rng=None):
                rng = rng or np.random.default_rng(0)
                return rng.random()
        """)
        assert findings == []

    def test_negative_outside_scoped_packages(self):
        findings = run_rule("RL002", """
            import time

            def measure():
                return time.perf_counter()
        """, rel="src/repro/experiments/_fixture.py")
        assert findings == []

    def test_suppression_honored(self):
        findings = run_rule("RL002", """
            import time

            def run():
                # repro-lint: disable=RL002 -- reporting-only elapsed time, never affects selection
                started = time.perf_counter()
                return started
        """)
        assert findings == []


class TestRL003SpanHygiene:
    def test_positive_dropped_span(self):
        findings = run_rule("RL003", """
            def step(tracer):
                tracer.span("session.step")
                return 1
        """)
        assert codes(findings) == ["RL003"]

    def test_positive_parked_span(self):
        findings = run_rule("RL003", """
            def step(self):
                cm = self.tracer.span("greedy.init")
                return cm
        """)
        assert codes(findings) == ["RL003"]

    def test_negative_with_managed(self):
        findings = run_rule("RL003", """
            def step(tracer):
                with tracer.span("session.step") as span:
                    span.annotate(ok=True)
        """)
        assert findings == []

    def test_negative_enter_context(self):
        findings = run_rule("RL003", """
            def step(tracer, stack):
                span = stack.enter_context(tracer.span("session.step"))
                return span
        """)
        assert findings == []

    def test_suppression_honored(self):
        findings = run_rule("RL003", """
            def identity_check(tracer):
                # repro-lint: disable=RL003 -- asserting the no-op tracer reuses one context manager
                assert tracer.span("a.b") is tracer.span("c.d")
        """)
        assert findings == []


class TestRL004Naming:
    def test_positive_bad_metric_name(self):
        findings = run_rule("RL004", """
            def work(metrics):
                metrics.incr("HeapPops")
        """)
        assert codes(findings) == ["RL004"]
        assert "HeapPops" in findings[0].message

    def test_positive_undotted_span_name(self):
        findings = run_rule("RL004", """
            def work(self):
                with self.tracer.span("init"):
                    pass
        """)
        assert codes(findings) == ["RL004"]

    def test_negative_convention_names(self):
        findings = run_rule("RL004", """
            def work(self, metrics):
                metrics.incr("greedy.heap_pops")
                metrics.observe("session.op_seconds", 0.1)
                with self.tracer.span("ladder.exact"):
                    self.tracer.event("breaker.trip", state="open")
        """)
        assert findings == []

    def test_negative_dynamic_names_skipped(self):
        findings = run_rule("RL004", """
            def work(metrics, name):
                metrics.incr(f"session.{name}")
                metrics.incr(name)
        """)
        assert findings == []

    def test_negative_out_of_tree_module(self):
        findings = run_rule(
            "RL004",
            "def t(metrics):\n    metrics.incr('x')\n",
            rel="tests/_fixture.py",
        )
        assert findings == []

    def test_suppression_honored(self):
        findings = run_rule("RL004", """
            def work(metrics):
                metrics.incr("legacy_counter")  # repro-lint: disable=RL004 -- grandfathered dashboard key
        """)
        assert findings == []


class TestRL005ExceptionPolicy:
    def test_positive_swallowing_handler(self):
        findings = run_rule("RL005", """
            def load():
                try:
                    return 1
                except Exception:
                    return None
        """)
        assert codes(findings) == ["RL005"]

    def test_positive_bare_except(self):
        findings = run_rule("RL005", """
            def load():
                try:
                    return 1
                except:
                    pass
        """)
        assert codes(findings) == ["RL005"]
        assert "bare except" in findings[0].message

    def test_negative_reraise(self):
        findings = run_rule("RL005", """
            def load(breaker):
                try:
                    return 1
                except Exception:
                    breaker.cleanup()
                    raise
        """)
        assert findings == []

    def test_negative_records_metric(self):
        findings = run_rule("RL005", """
            def load(metrics, breaker):
                try:
                    return 1
                except Exception:
                    metrics.incr("index.fallbacks")
                    return None

            def probe(breaker):
                try:
                    return 1
                except Exception:
                    breaker.record_failure()
                    return None
        """)
        assert findings == []

    def test_negative_narrow_handler(self):
        findings = run_rule("RL005", """
            def load():
                try:
                    return 1
                except (ValueError, KeyError):
                    return None
        """)
        assert findings == []

    def test_suppression_honored(self):
        findings = run_rule("RL005", """
            def close(segment):
                try:
                    segment.close()
                # repro-lint: disable=RL005 -- best-effort teardown; nothing to record
                except Exception:
                    pass
        """)
        assert findings == []


class TestRL006Annotations:
    def test_positive_missing_annotations(self):
        findings = run_rule("RL006", """
            def select(dataset, k=10):
                return dataset
        """)
        assert codes(findings) == ["RL006"]
        message = findings[0].message
        assert "dataset" in message and "k" in message and "return" in message

    def test_positive_init_params(self):
        findings = run_rule("RL006", """
            class Session:
                def __init__(self, dataset, k: int = 10) -> None:
                    self.dataset = dataset
        """)
        assert codes(findings) == ["RL006"]
        assert "dataset" in findings[0].message

    def test_negative_fully_annotated(self):
        findings = run_rule("RL006", """
            import numpy as np

            def select(ids: np.ndarray, k: int = 10) -> np.ndarray:
                return ids[:k]

            class Session:
                def __init__(self, k: int = 10) -> None:
                    self.k = k

                def run(self) -> int:
                    return self.k
        """)
        assert findings == []

    def test_negative_private_and_dunder_exempt(self):
        findings = run_rule("RL006", """
            class Session:
                def _helper(self, x):
                    return x

                def __repr__(self):
                    return "Session()"

            def _module_helper(y):
                return y
        """)
        assert findings == []

    def test_negative_out_of_scope_package(self):
        findings = run_rule(
            "RL006",
            "def f(x):\n    return x\n",
            rel="src/repro/robustness/_fixture.py",
        )
        assert findings == []

    def test_suppression_honored(self):
        findings = run_rule("RL006", """
            # repro-lint: disable=RL006 -- numpy duck-typed shim kept signature-compatible with scipy
            def shim(a, b):
                return a + b
        """)
        assert findings == []


class TestSuppressionMachinery:
    def test_unjustified_suppression_is_meta_finding_and_not_honored(self):
        findings = check_source(
            textwrap.dedent("""
                import time

                def run():
                    started = time.perf_counter()  # repro-lint: disable=RL002
                    return started
            """),
            rules=resolve_rules(select=["RL002"]),
        )
        assert sorted(codes(findings)) == [META_RULE, "RL002"]

    def test_malformed_directive_is_meta_finding(self):
        findings = check_source(
            "x = 1  # repro-lint: what even is this\n",
            rules=resolve_rules(select=["RL004"]),
        )
        assert codes(findings) == [META_RULE]

    def test_multi_rule_suppression(self):
        findings = check_source(
            textwrap.dedent("""
                import time

                def run(metrics):
                    # repro-lint: disable=RL002, RL004 -- fixture exercising multi-id suppressions
                    metrics.observe("BadName", time.perf_counter())
            """),
            rules=resolve_rules(select=["RL002", "RL004"]),
        )
        assert findings == []

    def test_marker_inside_string_is_inert(self):
        findings = check_source(
            'DOC = "# repro-lint: disable=RL002"\n',
            rules=resolve_rules(),
        )
        assert findings == []
