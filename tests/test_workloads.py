"""Tests for query/navigation workload generation."""

import numpy as np
import pytest

from repro import MapSession
from repro.datasets import (
    pan_offset_for_overlap,
    random_navigation_trace,
    random_region_queries,
    uk_tweets,
)
from repro.geo import BoundingBox


@pytest.fixture(scope="module")
def dataset():
    return uk_tweets(n=5000)


class TestRegionQueries:
    def test_count_and_size(self, dataset):
        queries = random_region_queries(
            dataset, 5, region_fraction=0.1, k=20,
            rng=np.random.default_rng(0),
        )
        assert len(queries) == 5
        frame = dataset.frame()
        side = 0.1 * max(frame.width, frame.height)
        for q in queries:
            assert q.region.width == pytest.approx(side)
            assert q.k == 20

    def test_theta_follows_fraction(self, dataset):
        (query,) = random_region_queries(
            dataset, 1, region_fraction=0.1, theta_fraction=0.01,
            rng=np.random.default_rng(1),
        )
        assert query.theta == pytest.approx(0.01 * query.region.width)

    def test_centered_on_objects(self, dataset):
        queries = random_region_queries(
            dataset, 10, region_fraction=0.05, rng=np.random.default_rng(2)
        )
        for q in queries:
            center = q.region.center
            dists = np.hypot(dataset.xs - center.x, dataset.ys - center.y)
            assert dists.min() < 1e-9  # an object sits at the center

    def test_min_population_respected(self, dataset):
        queries = random_region_queries(
            dataset, 5, region_fraction=0.1, min_population=20,
            rng=np.random.default_rng(3),
        )
        for q in queries:
            assert dataset.index.count_region(q.region) >= 20

    def test_impossible_min_population_raises(self, dataset):
        with pytest.raises(RuntimeError, match="could not find"):
            random_region_queries(
                dataset, 1, region_fraction=0.001,
                min_population=10_000, max_attempts=3,
                rng=np.random.default_rng(4),
            )

    def test_validation(self, dataset):
        with pytest.raises(ValueError):
            random_region_queries(dataset, 0)


class TestPanOffsets:
    def test_overlap_fraction_realized(self):
        region = BoundingBox(0.0, 0.0, 1.0, 1.0)
        for overlap in (0.0, 0.25, 0.5, 0.9, 1.0):
            dx, dy = pan_offset_for_overlap(
                region, overlap, rng=np.random.default_rng(5), axis="x"
            )
            moved = region.panned(dx, dy)
            assert region.overlap_fraction(moved) == pytest.approx(overlap)

    def test_axis_pinning(self):
        region = BoundingBox(0.0, 0.0, 1.0, 1.0)
        dx, dy = pan_offset_for_overlap(
            region, 0.5, rng=np.random.default_rng(6), axis="y"
        )
        assert dx == 0.0 and dy != 0.0

    def test_invalid_inputs(self):
        region = BoundingBox.unit()
        with pytest.raises(ValueError):
            pan_offset_for_overlap(region, 1.5)
        with pytest.raises(ValueError):
            pan_offset_for_overlap(region, 0.5, axis="z")


class TestNavigationTraces:
    def test_trace_length(self, dataset):
        trace = random_navigation_trace(
            dataset, 8, rng=np.random.default_rng(7)
        )
        assert len(trace.operations) == 8

    def test_replay_on_session(self, dataset):
        trace = random_navigation_trace(
            dataset, 4, region_fraction=0.2, rng=np.random.default_rng(8)
        )
        session = MapSession(dataset, k=5, theta_fraction=0.005)
        steps = trace.replay(session)
        assert len(steps) == 5  # start + 4 operations
        assert steps[0].operation == "initial"

    def test_zoom_depth_bounded(self, dataset):
        """Zoom-ins and zoom-outs never drift more than one level."""
        trace = random_navigation_trace(
            dataset, 50, rng=np.random.default_rng(9)
        )
        depth = 0
        for kind, _arg in trace.operations:
            if kind == "zoom_in":
                depth += 1
            elif kind == "zoom_out":
                depth -= 1
            assert -1 <= depth <= 1

    def test_unknown_operation_rejected(self, dataset):
        from repro.datasets import NavigationTrace

        trace = NavigationTrace(
            start=BoundingBox(0.4, 0.4, 0.6, 0.6),
            operations=(("teleport", None),),
        )
        session = MapSession(dataset, k=5)
        with pytest.raises(ValueError, match="teleport"):
            trace.replay(session)

    def test_negative_length_rejected(self, dataset):
        with pytest.raises(ValueError):
            random_navigation_trace(dataset, -1)
