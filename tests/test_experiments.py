"""Tests for the experiment harness, timing, and reporting."""

import numpy as np
import pytest

from repro.datasets import random_region_queries, uk_tweets
from repro.experiments import (
    compare_methods,
    format_series,
    format_table,
    measure,
    run_selector,
    selector_catalog,
)


@pytest.fixture(scope="module")
def dataset():
    return uk_tweets(n=4000)


@pytest.fixture(scope="module")
def queries(dataset):
    return random_region_queries(
        dataset, 2, region_fraction=0.15, k=10,
        rng=np.random.default_rng(0), min_population=30,
    )


class TestCatalog:
    def test_contains_paper_methods(self):
        catalog = selector_catalog()
        for name in ("Greedy", "SASS", "Random", "K-means",
                     "MaxMin", "MaxSum", "DisC"):
            assert name in catalog

    def test_run_selector_by_name(self, dataset, queries):
        result = run_selector(
            "Greedy", dataset, queries[0], rng=np.random.default_rng(1)
        )
        assert len(result) == queries[0].k

    def test_unknown_selector(self, dataset, queries):
        with pytest.raises(ValueError, match="unknown selector"):
            run_selector("Oracle", dataset, queries[0])


class TestCompareMethods:
    def test_aggregates_all_methods(self, dataset, queries):
        rows = compare_methods(dataset, queries, ["Greedy", "Random"])
        assert [r.method for r in rows] == ["Greedy", "Random"]
        for row in rows:
            assert row.runs == len(queries)
            assert row.mean_runtime_s >= 0.0
            assert 0.0 <= row.mean_score <= 1.0

    def test_greedy_scores_at_least_random(self, dataset, queries):
        rows = compare_methods(dataset, queries, ["Greedy", "Random"])
        by_name = {r.method: r for r in rows}
        assert by_name["Greedy"].mean_score >= by_name["Random"].mean_score

    def test_row_formatting(self, dataset, queries):
        rows = compare_methods(dataset, queries, ["Random"])
        cells = rows[0].row()
        assert cells[0] == "Random"
        assert len(cells) == 4


class TestMeasure:
    def test_repeats_and_result(self):
        calls = []
        m = measure(lambda: calls.append(1) or len(calls), repeats=5)
        assert m.repeats == 5
        assert len(calls) == 5
        assert m.last_result == 5
        assert m.min_s <= m.mean_s <= m.max_s
        assert m.mean_ms == pytest.approx(m.mean_s * 1000)

    def test_warmup_not_counted_in_stats(self):
        calls = []
        measure(lambda: calls.append(1), repeats=2, warmup=3)
        assert len(calls) == 5

    def test_validation(self):
        with pytest.raises(ValueError):
            measure(lambda: None, repeats=0)


class TestReporting:
    def test_format_table_alignment(self):
        out = format_table(
            ["method", "runtime"],
            [["Greedy", "1.5"], ["Random", "0.1"]],
            title="Fig 7",
        )
        lines = out.splitlines()
        assert lines[0] == "Fig 7"
        assert lines[1].startswith("method")
        assert all(len(line) >= len("method  runtime") for line in lines[1:])

    def test_format_table_rejects_ragged_rows(self):
        with pytest.raises(ValueError, match="cells"):
            format_table(["a", "b"], [["only one"]])

    def test_format_series(self):
        out = format_series(
            "k", [60, 80],
            {"Greedy": [0.5, 0.7], "Random": [0.1, 0.2]},
        )
        lines = out.splitlines()
        assert lines[0].split() == ["k", "Greedy", "Random"]
        assert lines[2].split() == ["60", "0.5000", "0.1000"]
