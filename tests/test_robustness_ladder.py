"""Degradation ladder + session-boundary robustness.

Covers the ISSUE acceptance criteria: navigation under a 1 ms deadline
on a 50k-object region still returns a θ-feasible selection with the
degraded tier recorded, and 100% fault injection on the prefetch point
completes all three operations via the cold path with no exception
escaping the session.
"""

import numpy as np
import pytest

from repro import (
    CircuitBreaker,
    FaultInjector,
    GeoDataset,
    MapSession,
    Tier,
    select_with_ladder,
)
from repro.geo import BoundingBox
from repro.geo.distance import pairwise_min_distance
from repro.robustness import (
    INDEX_QUERY,
    PREFETCH_COMPUTE,
    SIMILARITY_EVAL,
    Deadline,
    InfeasibleSelection,
)
from repro.robustness.faults import STANDARD_POINTS

START = BoundingBox(0.25, 0.25, 0.75, 0.75)


def make_dataset(n=3000, seed=11):
    gen = np.random.default_rng(seed)
    return GeoDataset.build(
        gen.random(n), gen.random(n), weights=gen.random(n)
    )


def assert_step_feasible(dataset, step):
    """Every served step must satisfy the visibility constraint."""
    sel = step.result.selected
    if len(sel) >= 2:
        gap = pairwise_min_distance(dataset.xs[sel], dataset.ys[sel])
        assert gap >= step.theta, (
            f"{step.operation} via tier {step.tier}: min gap {gap} < "
            f"theta {step.theta}"
        )


def drive(session, operation):
    if operation == "pan":  # a zero pan exposes no fresh candidates
        return session.pan(dx=0.05)
    return getattr(session, operation)()


NAV_OPS = ["zoom_in", "zoom_out", "pan"]


class TestLadderDirect:
    """select_with_ladder without a session around it."""

    def _ids(self, dataset, region=START):
        return dataset.objects_in(region)

    def test_undisturbed_run_is_exact(self):
        dataset = make_dataset()
        ids = self._ids(dataset)
        result = select_with_ladder(
            dataset,
            region_ids=ids,
            candidate_ids=ids,
            mandatory_ids=np.empty(0, dtype=np.int64),
            k=10,
            theta=0.01,
        )
        assert result.stats["tier"] == Tier.EXACT.value
        assert not result.degraded
        assert result.stats["ladder_attempts"] == []

    def test_expired_deadline_lands_on_topweight(self):
        dataset = make_dataset()
        ids = self._ids(dataset)
        result = select_with_ladder(
            dataset,
            region_ids=ids,
            candidate_ids=ids,
            mandatory_ids=np.empty(0, dtype=np.int64),
            k=10,
            theta=0.01,
            deadline=Deadline(expires_at=0.0),
        )
        assert result.stats["tier"] == Tier.TOPWEIGHT.value
        assert result.degraded
        # Tier 1 ran out, tier 2 was skipped (deadline already gone).
        reasons = dict(result.stats["ladder_attempts"])
        assert reasons["exact"] == "deadline"
        assert reasons["sampled"] == "skipped:deadline"
        sel = result.selected
        assert len(sel) > 0
        assert pairwise_min_distance(dataset.xs[sel], dataset.ys[sel]) >= 0.01

    def test_similarity_fault_descends_to_topweight(self):
        # similarity.eval breaks tiers 1 AND 2 (both run the greedy),
        # so the ladder must land on the kernel-free top-weight fill.
        dataset = make_dataset()
        ids = self._ids(dataset)
        injector = FaultInjector().arm(SIMILARITY_EVAL)
        result = select_with_ladder(
            dataset,
            region_ids=ids,
            candidate_ids=ids,
            mandatory_ids=np.empty(0, dtype=np.int64),
            k=10,
            theta=0.01,
            fault_injector=injector,
        )
        assert result.stats["tier"] == Tier.TOPWEIGHT.value
        reasons = dict(result.stats["ladder_attempts"])
        assert reasons["exact"] == "fault:FaultInjected"
        assert reasons["sampled"] == "fault:FaultInjected"
        assert len(result.selected) == 10

    def test_transient_fault_recovers_at_sampled_tier(self):
        # One fault burns tier 1; tier 2 then runs clean.
        dataset = make_dataset()
        ids = self._ids(dataset)
        injector = FaultInjector().arm(SIMILARITY_EVAL, max_fires=1)
        result = select_with_ladder(
            dataset,
            region_ids=ids,
            candidate_ids=ids,
            mandatory_ids=np.empty(0, dtype=np.int64),
            k=10,
            theta=0.01,
            fault_injector=injector,
            rng=np.random.default_rng(3),
        )
        assert result.stats["tier"] == Tier.SAMPLED.value
        assert result.degraded
        assert result.stats["sample_size"] > 0

    def test_topweight_prefers_heavy_objects(self):
        gen = np.random.default_rng(0)
        n = 500
        weights = np.linspace(0.0, 1.0, n)
        dataset = GeoDataset.build(
            gen.random(n), gen.random(n), weights=weights
        )
        ids = np.arange(n, dtype=np.int64)
        injector = FaultInjector().arm(SIMILARITY_EVAL)
        result = select_with_ladder(
            dataset,
            region_ids=ids,
            candidate_ids=ids,
            mandatory_ids=np.empty(0, dtype=np.int64),
            k=5,
            theta=0.0,
            fault_injector=injector,
        )
        # θ = 0: nothing conflicts, so exactly the 5 heaviest win.
        assert sorted(int(i) for i in result.selected) == list(
            range(n - 5, n)
        )
        assert result.score == 0.0
        assert result.stats["score_evaluated"] is False

    def test_infeasible_mandatory_is_not_degraded_around(self):
        dataset = GeoDataset.build(
            np.array([0.5, 0.5001, 0.9]), np.array([0.5, 0.5001, 0.9])
        )
        ids = np.arange(3, dtype=np.int64)
        with pytest.raises(InfeasibleSelection):
            select_with_ladder(
                dataset,
                region_ids=ids,
                candidate_ids=np.array([2], dtype=np.int64),
                mandatory_ids=np.array([0, 1], dtype=np.int64),
                k=3,
                theta=0.1,
                deadline=Deadline(expires_at=0.0),
            )


class TestSessionDegradation:
    """Parametrized navigation under faults and tight deadlines."""

    @pytest.mark.parametrize("operation", NAV_OPS)
    @pytest.mark.parametrize("point", sorted(STANDARD_POINTS))
    def test_navigation_with_full_fault_stays_feasible(
        self, operation, point
    ):
        dataset = make_dataset()
        injector = FaultInjector(seed=1).arm(point)
        session = MapSession(
            dataset, k=12, prefetch=True, fault_injector=injector
        )
        session.start(START)
        step = drive(session, operation)
        assert len(step.result) > 0
        assert_step_feasible(dataset, step)
        if point == PREFETCH_COMPUTE:
            # Selection itself is untouched; only the accelerator dies.
            assert not step.used_prefetch
        else:
            assert step.degraded
            assert step.tier in (Tier.SAMPLED.value, Tier.TOPWEIGHT.value)

    @pytest.mark.parametrize("operation", NAV_OPS)
    def test_navigation_with_tight_deadline_stays_feasible(self, operation):
        dataset = make_dataset(n=8000)
        # 50 µs: far below what even one greedy iteration needs, so
        # every step must degrade — yet stay θ-feasible.
        session = MapSession(dataset, k=12, deadline_s=0.00005)
        session.start(START)
        step = drive(session, operation)
        assert step.degraded
        assert step.tier != Tier.EXACT.value
        assert len(step.result) > 0
        assert_step_feasible(dataset, step)

    @pytest.mark.parametrize("operation", NAV_OPS)
    def test_faults_plus_deadline_together(self, operation):
        dataset = make_dataset()
        injector = FaultInjector(seed=2).arm(SIMILARITY_EVAL).arm(INDEX_QUERY)
        session = MapSession(
            dataset, k=10, deadline_s=0.0005, fault_injector=injector
        )
        session.start(START)
        step = drive(session, operation)
        assert step.degraded
        assert step.stats["index_fallback"]
        assert session.index_fallbacks >= 2  # start + the operation
        assert_step_feasible(dataset, step)

    def test_generous_deadline_session_not_degraded(self):
        dataset = make_dataset(n=800)
        session = MapSession(dataset, k=10, deadline_s=60.0)
        first = session.start(START)
        assert not first.degraded
        assert first.tier == Tier.EXACT.value
        for operation in NAV_OPS:
            step = drive(session, operation)
            assert not step.degraded
            assert step.tier == Tier.EXACT.value

    def test_mandatory_set_preserved_across_degraded_zoom_in(self):
        dataset = make_dataset()
        session = MapSession(dataset, k=12, deadline_s=0.00005)
        session.start(START)
        step = session.zoom_in()
        # Zooming consistency holds even on the degraded path.
        assert np.isin(step.mandatory, step.result.selected).all()


class TestAcceptanceCriteria:
    """The two scenarios named in the issue, verbatim."""

    def test_one_ms_deadline_on_50k_objects(self):
        gen = np.random.default_rng(2018)
        n = 50_000
        dataset = GeoDataset.build(
            gen.random(n), gen.random(n), weights=gen.random(n)
        )
        session = MapSession(dataset, k=25, deadline_s=0.001)
        for step in (
            session.start(START),
            session.zoom_in(),
            session.zoom_out(),
            session.pan(dx=0.05),
        ):
            assert len(step.result) > 0
            assert_step_feasible(dataset, step)
            if step.degraded:  # tier must be recorded when degraded
                assert step.tier in (
                    Tier.SAMPLED.value,
                    Tier.TOPWEIGHT.value,
                ) or step.stats["budget_exhausted"] is not None

    def test_full_prefetch_fault_serves_all_ops_cold(self):
        dataset = make_dataset()
        injector = FaultInjector(seed=5).arm(PREFETCH_COMPUTE)
        session = MapSession(
            dataset, k=12, prefetch=True, fault_injector=injector
        )
        session.start(START)
        assert session.prefetch_errors  # precompute failed, silently
        for operation in NAV_OPS:
            step = drive(session, operation)  # no exception escapes
            assert not step.used_prefetch  # cold path
            assert len(step.result) > 0
            assert_step_feasible(dataset, step)
        assert injector.fires(PREFETCH_COMPUTE) > 0


class TestSessionBreaker:
    def test_breaker_opens_and_stops_calling_prefetcher(self):
        dataset = make_dataset(n=1000)
        injector = FaultInjector().arm(PREFETCH_COMPUTE)
        breaker = CircuitBreaker(failure_threshold=3, reset_after_s=1e9)
        session = MapSession(
            dataset,
            k=8,
            prefetch=True,
            fault_injector=injector,
            breaker=breaker,
        )
        session.start(START)  # 3 builder failures -> breaker trips
        assert breaker.state == "open"
        attempts_when_open = injector.attempts.get(PREFETCH_COMPUTE, 0)
        session.pan(dx=0.02)  # precompute now short-circuits
        assert injector.attempts.get(PREFETCH_COMPUTE, 0) == attempts_when_open
        assert breaker.rejections >= 3
        assert set(session.prefetch_errors.values()) == {"CircuitOpen"}

    def test_breaker_recovers_after_fault_clears(self):
        dataset = make_dataset(n=1000)
        injector = FaultInjector().arm(PREFETCH_COMPUTE, max_fires=3)
        breaker = CircuitBreaker(failure_threshold=3, reset_after_s=0.0)
        session = MapSession(
            dataset,
            k=8,
            prefetch=True,
            fault_injector=injector,
            breaker=breaker,
        )
        session.start(START)  # trips: all 3 fires consumed
        session.pan(dx=0.02)  # cool-down 0 -> half-open probe succeeds
        assert breaker.state == "closed"
        assert session.prefetch_errors == {}
        step = session.pan(dx=0.02)
        assert step.used_prefetch
