"""Shared fixtures for the test suite.

Fixture datasets are small and deterministic; anything that needs
scale belongs in benchmarks, not tests.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import GeoDataset, RegionQuery
from repro.geo import BoundingBox
from repro.similarity import MatrixSimilarity


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture
def uniform_dataset() -> GeoDataset:
    """600 uniform points in the unit square, Euclidean similarity."""
    gen = np.random.default_rng(7)
    xs = gen.random(600)
    ys = gen.random(600)
    return GeoDataset.build(xs, ys)


@pytest.fixture
def weighted_dataset() -> GeoDataset:
    """400 uniform points with non-trivial weights."""
    gen = np.random.default_rng(11)
    xs = gen.random(400)
    ys = gen.random(400)
    weights = gen.random(400)
    return GeoDataset.build(xs, ys, weights=weights)


@pytest.fixture
def matrix_dataset() -> GeoDataset:
    """40 points with a random explicit similarity matrix."""
    gen = np.random.default_rng(3)
    xs = gen.random(40)
    ys = gen.random(40)
    sim = MatrixSimilarity.random(40, gen)
    return GeoDataset.build(xs, ys, similarity=sim)


@pytest.fixture
def text_dataset() -> GeoDataset:
    """Small clustered corpus with TF-IDF cosine similarity."""
    from repro.datasets import DatasetSpec, generate_clustered

    spec = DatasetSpec(name="test", n=1500, n_clusters=4, seed=99)
    return generate_clustered(spec)


@pytest.fixture
def center_query() -> RegionQuery:
    """A query over the central quarter of the unit square."""
    region = BoundingBox(0.25, 0.25, 0.75, 0.75)
    return RegionQuery(region=region, k=12, theta=0.02)


def make_grid_dataset(side: int = 10, spacing: float = 0.1) -> GeoDataset:
    """Points on a regular grid — handy for predictable visibility."""
    coords = np.arange(side) * spacing
    gx, gy = np.meshgrid(coords, coords)
    return GeoDataset.build(gx.ravel(), gy.ravel())
