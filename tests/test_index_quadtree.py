"""Quadtree-specific tests beyond the shared index contract."""

import numpy as np
import pytest

from repro.geo import BoundingBox
from repro.index import LinearIndex, QuadTreeIndex


def random_points(n: int, seed: int) -> tuple[np.ndarray, np.ndarray]:
    gen = np.random.default_rng(seed)
    return gen.random(n), gen.random(n)


class TestBuild:
    def test_invariants(self):
        xs, ys = random_points(3000, 1)
        tree = QuadTreeIndex(xs, ys)
        tree.check_invariants()

    def test_leaf_capacity_validation(self):
        with pytest.raises(ValueError):
            QuadTreeIndex(np.array([0.0]), np.array([0.0]), leaf_capacity=0)

    def test_clustered_data_goes_deep(self):
        gen = np.random.default_rng(2)
        # A tight blob plus sparse background: the blob must deepen the
        # tree far beyond what uniform data of the same size needs.
        blob = 0.5 + gen.normal(0, 0.001, (2000, 2))
        sparse = gen.random((100, 2))
        pts = np.concatenate([blob, sparse])
        tree = QuadTreeIndex(pts[:, 0], pts[:, 1], leaf_capacity=16)
        uniform = QuadTreeIndex(*random_points(2100, 3), leaf_capacity=16)
        assert tree.depth() > uniform.depth()

    def test_coincident_points_terminate(self):
        xs = np.full(500, 0.25)
        ys = np.full(500, 0.75)
        tree = QuadTreeIndex(xs, ys, leaf_capacity=4)
        tree.check_invariants()
        out = tree.query_region(BoundingBox(0.0, 0.0, 1.0, 1.0))
        assert out.tolist() == list(range(500))

    def test_empty_tree(self):
        tree = QuadTreeIndex(np.array([]), np.array([]))
        assert len(tree.query_region(BoundingBox.unit())) == 0
        tree.check_invariants()


class TestInsert:
    def test_insert_matches_linear(self):
        xs, ys = random_points(100, 4)
        tree = QuadTreeIndex(xs, ys, leaf_capacity=8)
        gen = np.random.default_rng(5)
        for _ in range(400):
            tree.insert(float(gen.random()), float(gen.random()))
        tree.check_invariants()
        truth = LinearIndex(tree.xs, tree.ys)
        for _ in range(15):
            x1, x2 = sorted(gen.random(2))
            y1, y2 = sorted(gen.random(2))
            box = BoundingBox(x1, y1, x2, y2)
            assert tree.query_region(box).tolist() == (
                truth.query_region(box).tolist()
            )

    def test_insert_outside_frame_grows_root(self):
        xs, ys = random_points(50, 6)
        tree = QuadTreeIndex(xs, ys)
        far_id = tree.insert(5.0, -3.0)
        tree.check_invariants()
        hit = tree.query_region(BoundingBox(4.9, -3.1, 5.1, -2.9))
        assert hit.tolist() == [far_id]
        # The original points are still all reachable.
        everything = tree.query_region(BoundingBox(-10, -10, 10, 10))
        assert len(everything) == 51

    def test_insert_into_empty_tree(self):
        tree = QuadTreeIndex(np.array([]), np.array([]))
        new_id = tree.insert(0.3, 0.3)
        assert new_id == 0
        assert tree.query_region(BoundingBox.unit()).tolist() == [0]

    def test_radius_and_nearest_inherited(self):
        xs, ys = random_points(300, 7)
        tree = QuadTreeIndex(xs, ys)
        got = set(tree.query_radius(0.5, 0.5, 0.1).tolist())
        want = {
            i for i in range(300)
            if np.hypot(xs[i] - 0.5, ys[i] - 0.5) <= 0.1
        }
        assert got == want
        near = tree.nearest(0.5, 0.5, 3)
        d_near = sorted(np.hypot(xs[near] - 0.5, ys[near] - 0.5))
        d_all = sorted(np.hypot(xs - 0.5, ys - 0.5))
        assert d_near == pytest.approx(d_all[:3])
