"""Tests for the ASCII and SVG renderers."""

import numpy as np
import pytest

from repro import GeoDataset
from repro.geo import BoundingBox
from repro.viz import render_ascii, render_svg


@pytest.fixture
def ds():
    gen = np.random.default_rng(2)
    return GeoDataset.build(gen.random(300), gen.random(300))


REGION = BoundingBox(0.0, 0.0, 1.0, 1.0)


class TestAsciiRenderer:
    def test_dimensions(self, ds):
        out = render_ascii(ds, REGION, width=40, height=10)
        lines = out.splitlines()
        assert len(lines) == 12  # 10 rows + 2 border lines
        assert all(len(line) == 42 for line in lines)

    def test_no_border(self, ds):
        out = render_ascii(ds, REGION, width=40, height=10, border=False)
        assert len(out.splitlines()) == 10

    def test_selected_marked(self, ds):
        selected = np.array([0, 1, 2])
        out = render_ascii(ds, REGION, selected=selected, width=60, height=20)
        assert out.count("#") >= 1

    def test_selection_outside_region_ignored(self, ds):
        sub_region = BoundingBox(0.0, 0.0, 0.1, 0.1)
        far = np.array(
            [i for i in range(300)
             if not sub_region.contains_point(float(ds.xs[i]), float(ds.ys[i]))]
        )[:3]
        out = render_ascii(ds, sub_region, selected=far, width=30, height=10)
        assert "#" not in out

    def test_empty_region(self, ds):
        out = render_ascii(
            ds, BoundingBox(5.0, 5.0, 6.0, 6.0), width=20, height=5
        )
        body = [line[1:-1] for line in out.splitlines()[1:-1]]
        assert all(set(line) <= {" "} for line in body)

    def test_grid_validation(self, ds):
        with pytest.raises(ValueError):
            render_ascii(ds, REGION, width=1, height=1)

    def test_dense_cells_shade_darker(self):
        # 100 points in one corner cell, 1 in another.
        xs = np.concatenate([np.full(100, 0.05), [0.95]])
        ys = np.concatenate([np.full(100, 0.05), [0.95]])
        ds = GeoDataset.build(xs, ys)
        out = render_ascii(ds, REGION, width=10, height=10, border=False)
        assert "*" in out  # the heavy cell reaches the top ramp level
        assert "." in out  # the light cell stays near the bottom


class TestSvgRenderer:
    def test_valid_svg_structure(self, ds):
        svg = render_svg(ds, REGION, size=200)
        assert svg.startswith("<svg")
        assert svg.endswith("</svg>")
        assert 'width="200"' in svg

    def test_selected_drawn_highlighted(self, ds):
        svg = render_svg(ds, REGION, selected=np.array([5]))
        assert svg.count('fill="#d33"') == 1

    def test_title_escaped(self, ds):
        svg = render_svg(ds, REGION, title="<Greedy> & co")
        assert "&lt;Greedy&gt; &amp; co" in svg

    def test_written_to_file(self, ds, tmp_path):
        path = tmp_path / "map.svg"
        svg = render_svg(ds, REGION, path=path)
        assert path.read_text() == svg

    def test_background_subsampled(self, ds):
        svg = render_svg(ds, REGION, max_background_points=50)
        assert svg.count('r="1.2"') <= 60

    def test_size_validation(self, ds):
        with pytest.raises(ValueError):
            render_svg(ds, REGION, size=4)
