"""Tests for the Sec. 5.2 prefetcher.

The central property, verified per lemma: every prefetched bound
dominates the true first-iteration marginal gain of its object in the
realized new region — and therefore prefetch-seeded selections equal
plain ISOS selections.
"""

import numpy as np
import pytest

from repro import Prefetcher, isos_select
from repro.core.problem import IsosQuery
from repro.core.scoring import MarginalGainState
from repro.geo import BoundingBox


@pytest.fixture
def ds(text_dataset):
    return text_dataset


def dense_region(ds, side=0.3):
    """A region guaranteed to hold a good number of objects."""
    from repro.geo.point import Point

    best = None
    gen = np.random.default_rng(2)
    for _ in range(20):
        anchor = int(gen.integers(len(ds)))
        region = BoundingBox.from_center(
            Point(float(ds.xs[anchor]), float(ds.ys[anchor])), side
        ).clipped_to(BoundingBox(-0.5, -0.5, 1.5, 1.5))
        ids = ds.objects_in(region)
        if best is None or len(ids) > len(best[1]):
            best = (region, ids)
    return best[0]


def assert_bounds_dominate(ds, data, new_region, mandatory):
    """Every candidate's prefetched bound >= its true gain given D."""
    new_ids = ds.objects_in(new_region)
    if len(new_ids) == 0:
        return
    state = MarginalGainState(ds, new_ids)
    for obj in mandatory:
        state.add(int(obj))
    candidates = np.setdiff1d(new_ids, mandatory)
    if len(candidates) == 0:
        return
    assert data.covers(candidates)
    bounds = data.bounds_for(candidates, len(new_ids))
    for obj, bound in zip(candidates, bounds):
        assert bound >= state.gain(int(obj)) - 1e-9


class TestZoomInPrefetch:
    def test_bounds_dominate_gains(self, ds):
        region = dense_region(ds)
        data = Prefetcher(ds).prefetch_zoom_in(region)
        assert data.kind == "zoom_in"
        for scale in (0.5, 0.25):
            new_region = region.zoomed_in(scale)
            assert_bounds_dominate(
                ds, data, new_region, np.array([], dtype=np.int64)
            )

    def test_bounds_dominate_with_mandatory(self, ds):
        region = dense_region(ds)
        data = Prefetcher(ds).prefetch_zoom_in(region)
        new_region = region.zoomed_in(0.5)
        new_ids = ds.objects_in(new_region)
        if len(new_ids) >= 3:
            mandatory = new_ids[:2]
            assert_bounds_dominate(ds, data, new_region, mandatory)

    def test_covers_exactly_the_region(self, ds):
        region = dense_region(ds)
        data = Prefetcher(ds).prefetch_zoom_in(region)
        ids = ds.objects_in(region)
        assert data.covers(ids)
        outside = np.setdiff1d(np.arange(len(ds)), ids)[:5]
        if len(outside):
            assert not data.covers(outside)


class TestZoomOutPrefetch:
    def test_bounds_dominate_gains(self, ds):
        region = dense_region(ds, side=0.15)
        data = Prefetcher(ds).prefetch_zoom_out(region, max_scale=4.0)
        for scale in (1.5, 2.0, 4.0):
            new_region = region.zoomed_out(scale)
            assert_bounds_dominate(
                ds, data, new_region, np.array([], dtype=np.int64)
            )

    def test_does_not_cover_beyond_max_scale(self, ds):
        region = dense_region(ds, side=0.1)
        data = Prefetcher(ds).prefetch_zoom_out(region, max_scale=2.0)
        far = region.zoomed_out(8.0)
        far_ids = ds.objects_in(far)
        near_ids = ds.objects_in(region.zoom_out_union(2.0))
        extra = np.setdiff1d(far_ids, near_ids)
        if len(extra):
            assert not data.covers(extra)


class TestPanPrefetch:
    @pytest.mark.parametrize("tight", [False, True])
    def test_bounds_dominate_gains(self, ds, tight):
        region = dense_region(ds, side=0.2)
        data = Prefetcher(ds).prefetch_pan(region, tight=tight)
        for dx, dy in [(0.1, 0.0), (0.0, -0.1), (0.15, 0.1)]:
            new_region = region.panned(dx, dy)
            new_ids = ds.objects_in(new_region)
            overlap_ids = ds.objects_in(region)
            mandatory = np.intersect1d(new_ids, overlap_ids)[:3]
            assert_bounds_dominate(ds, data, new_region, mandatory)

    def test_tight_bounds_not_looser(self, ds):
        region = dense_region(ds, side=0.2)
        pf = Prefetcher(ds)
        loose = pf.prefetch_pan(region, tight=False)
        tight = pf.prefetch_pan(region, tight=True)
        assert np.array_equal(loose.ids, tight.ids)
        assert np.all(tight.raw_sums <= loose.raw_sums + 1e-9)


class TestPrefetchSeededSelection:
    def test_same_selection_as_plain_isos(self, ds):
        region = dense_region(ds, side=0.25)
        data = Prefetcher(ds).prefetch_zoom_in(region)
        new_region = region.zoomed_in(0.5)
        new_ids = ds.objects_in(new_region)
        if len(new_ids) < 5:
            pytest.skip("region too sparse for a meaningful comparison")
        mandatory = new_ids[:1]
        candidates = np.setdiff1d(new_ids, mandatory)
        query = IsosQuery(
            region=new_region, k=min(6, len(new_ids)), theta=0.0,
            candidates=candidates, mandatory=mandatory,
        )
        plain = isos_select(ds, query)
        seeded = isos_select(
            ds, query,
            initial_bounds=data.bounds_for(candidates, len(new_ids)),
        )
        assert plain.selected.tolist() == seeded.selected.tolist()
        assert plain.score == pytest.approx(seeded.score)

    def test_seeded_needs_fewer_initial_evaluations(self, ds):
        region = dense_region(ds, side=0.25)
        data = Prefetcher(ds).prefetch_zoom_in(region)
        new_region = region.zoomed_in(0.5)
        new_ids = ds.objects_in(new_region)
        if len(new_ids) < 30:
            pytest.skip("region too sparse")
        candidates = new_ids
        query = IsosQuery(
            region=new_region, k=5, theta=0.0,
            candidates=candidates, mandatory=np.array([], dtype=np.int64),
        )
        plain = isos_select(ds, query)
        seeded = isos_select(
            ds, query,
            initial_bounds=data.bounds_for(candidates, len(new_ids)),
        )
        assert (
            seeded.stats["gain_evaluations"] < plain.stats["gain_evaluations"]
        )


class TestPrefetchDataValidation:
    def test_misaligned_arrays_rejected(self):
        from repro import PrefetchData

        with pytest.raises(ValueError, match="align"):
            PrefetchData(
                kind="pan", source_region=BoundingBox.unit(),
                ids=np.array([1, 2]), raw_sums=np.array([0.5]),
                elapsed_s=0.0,
            )

    def test_bounds_for_bad_population(self):
        from repro import PrefetchData

        data = PrefetchData(
            kind="pan", source_region=BoundingBox.unit(),
            ids=np.array([1]), raw_sums=np.array([0.5]), elapsed_s=0.0,
        )
        with pytest.raises(ValueError):
            data.bounds_for(np.array([1]), 0)

    def test_bounds_for_unknown_candidate_raises_typed_error(self):
        from repro import PrefetchData, PrefetchUnavailable

        data = PrefetchData(
            kind="pan", source_region=BoundingBox.unit(),
            ids=np.array([1, 2]), raw_sums=np.array([0.5, 0.25]),
            elapsed_s=0.0,
        )
        with pytest.raises(PrefetchUnavailable, match="no bound"):
            data.bounds_for(np.array([1, 99]), 4)
        # Not a bare KeyError: the session's cold-serve fallback
        # catches PrefetchUnavailable, nothing else.
        try:
            data.bounds_for(np.array([99]), 4)
        except PrefetchUnavailable:
            pass
        else:  # pragma: no cover - regression guard
            pytest.fail("expected PrefetchUnavailable")

    def test_covers_is_vectorized_and_exact(self):
        from repro import PrefetchData

        data = PrefetchData(
            kind="pan", source_region=BoundingBox.unit(),
            ids=np.array([3, 5, 9]), raw_sums=np.zeros(3),
            elapsed_s=0.0,
        )
        assert data.covers(np.array([3, 9]))
        assert data.covers(np.array([], dtype=np.int64))
        assert not data.covers(np.array([3, 4]))
        assert not data.covers(np.array([10]))


class TestSessionColdFallback:
    def test_uncovered_candidates_serve_cold(self, ds):
        """Prefetch material that stops covering the candidates (here:
        forcibly truncated, as after a coverage race) must not error
        the response path — the step serves cold, bit-identically."""
        from repro import MapSession

        region = dense_region(ds, side=0.3)

        reference = MapSession(ds, k=6, prefetch=False)
        reference.start(region)
        expected = reference.pan(0.15, 0.05)
        assert len(expected.candidates) > 0  # the fallback must matter

        session = MapSession(ds, k=6, prefetch=True)
        session.start(region)
        # Sabotage every prefetch kind: keep only one bound so
        # covers() fails (or bounds_for would raise PrefetchUnavailable).
        for data in session._prefetch_data.values():
            data.ids = data.ids[:1]
            data.raw_sums = data.raw_sums[:1]
        step = session.pan(0.15, 0.05)
        assert not step.used_prefetch
        assert np.array_equal(step.result.selected, expected.result.selected)
