"""Chaos drills: injected faults at every service-path injection point.

Acceptance criteria from the ISSUE: the chaos suite passes with zero
hung requests (every await is wrapped in a wait_for harness) and zero
corrupted selections (fault-surviving responses are byte-identical to
a direct MapSession replay).
"""

import asyncio

import numpy as np
import pytest

from repro import CircuitBreaker, FaultInjector, GeoDataset, MapSession
from repro.robustness import (
    PREFETCH_COMPUTE,
    SERVICE_ADMIT,
    SERVICE_HANDLE,
)
from repro.service import (
    AdmissionController,
    RetryBudget,
    RetryPolicy,
    SelectionService,
    ServiceRequest,
)

#: Any request taking longer than this has hung; generous enough for a
#: loaded CI runner, far below a human-visible stall.
HANG_TIMEOUT_S = 30.0

START = [0.25, 0.25, 0.75, 0.75]


def make_dataset(n=800, seed=9):
    gen = np.random.default_rng(seed)
    return GeoDataset.build(
        gen.random(n), gen.random(n), weights=gen.random(n)
    )


def make_service(dataset=None, **kwargs):
    kwargs.setdefault("session_options", {"k": 8, "workers": 0})
    kwargs.setdefault("default_deadline_ms", 5000.0)
    return SelectionService({"a": dataset or make_dataset()}, **kwargs)


async def guarded(coro):
    """Await ``coro`` with the zero-hung-requests guard."""
    return await asyncio.wait_for(coro, HANG_TIMEOUT_S)


class TestAdmitFaults:
    def test_admit_fault_is_typed_and_fast(self):
        async def go():
            injector = FaultInjector(seed=0).arm(SERVICE_ADMIT)
            service = make_service(fault_injector=injector)
            response = await guarded(
                service.handle(ServiceRequest(op="start", params={"region": START}))
            )
            assert not response.ok
            assert response.error_type == "FaultInjected"
            assert service.sessions.count == 0  # no state was touched

        asyncio.run(go())

    def test_admit_faults_trip_the_breaker(self):
        async def go():
            injector = FaultInjector(seed=0).arm(SERVICE_ADMIT)
            breaker = CircuitBreaker(failure_threshold=3, name="service")
            service = make_service(
                fault_injector=injector, breaker=breaker,
            )
            # service.admit fires before the breaker peek, so the
            # breaker never records these; they surface as injected
            # faults every time, not as queue collapse.
            for _ in range(5):
                response = await guarded(
                    service.handle(ServiceRequest(op="start"))
                )
                assert response.error_type == "FaultInjected"

        asyncio.run(go())


class TestHandleFaults:
    def test_transient_fault_retried_to_success(self):
        async def go():
            injector = FaultInjector(seed=0)
            injector.arm(SERVICE_HANDLE, max_fires=1)
            service = make_service(fault_injector=injector)
            response = await guarded(
                service.handle(ServiceRequest(op="start", params={"region": START}))
            )
            assert response.ok
            assert response.attempts == 2  # one fault, one success
            assert len(response.selection) > 0

        asyncio.run(go())

    def test_persistent_fault_exhausts_retries(self):
        async def go():
            injector = FaultInjector(seed=0).arm(SERVICE_HANDLE)
            service = make_service(
                fault_injector=injector,
                retry_policy=RetryPolicy(
                    max_attempts=3, base_delay_s=0.001, max_delay_s=0.002
                ),
            )
            response = await guarded(
                service.handle(ServiceRequest(op="start", params={"region": START}))
            )
            assert not response.ok
            assert response.error_type == "FaultInjected"
            # A failed start must not leak a half-started session.
            assert service.sessions.count == 0

        asyncio.run(go())

    def test_retry_budget_caps_amplification(self):
        async def go():
            injector = FaultInjector(seed=0).arm(SERVICE_HANDLE)
            service = make_service(
                fault_injector=injector,
                retry_policy=RetryPolicy(
                    max_attempts=3, base_delay_s=0.0, max_delay_s=0.0
                ),
                retry_budget=RetryBudget(
                    tokens_per_request=0.0, max_tokens=2.0
                ),
            )
            outcomes = []
            for _ in range(6):
                response = await guarded(
                    service.handle(ServiceRequest(op="start", params={"region": START}))
                )
                outcomes.append(response.error_type)
            # First two requests burn the 2 retry tokens; after that the
            # budget refuses and the typed budget error surfaces.
            assert "RetryBudgetExhausted" in outcomes
            assert service.metrics.count("service.retries") == 2.0

        asyncio.run(go())

    def test_fault_surviving_selection_is_byte_identical(self):
        async def go():
            dataset = make_dataset()
            injector = FaultInjector(seed=0)
            injector.arm(SERVICE_HANDLE, max_fires=2)
            service = make_service(dataset=dataset, fault_injector=injector)
            started = await guarded(
                service.handle(ServiceRequest(op="start", params={"region": START, "k": 8}))
            )
            sid = started.session_id
            zoomed = await guarded(
                service.handle(ServiceRequest(op="zoom_in", session_id=sid, params={"scale": 0.5}))
            )
            panned = await guarded(
                service.handle(ServiceRequest(op="pan", session_id=sid, params={"dx": 0.05}))
            )
            assert started.ok and zoomed.ok and panned.ok

            direct = MapSession(dataset, k=8)
            from repro.geo import BoundingBox

            expected = [
                direct.start(BoundingBox(*START)),
                direct.zoom_in(scale=0.5),
                direct.pan(dx=0.05),
            ]
            for response, step in zip(
                (started, zoomed, panned), expected
            ):
                assert response.selection == [int(i) for i in step.visible]
                assert response.score == pytest.approx(step.result.score)

        asyncio.run(go())


class TestSessionLevelChaos:
    def test_prefetch_chaos_does_not_corrupt_selections(self):
        async def go():
            dataset = make_dataset()
            injector = FaultInjector(seed=0).arm(PREFETCH_COMPUTE)
            service = make_service(
                dataset=dataset,
                session_options={
                    "k": 8, "workers": 0, "prefetch": True,
                    "fault_injector": injector,
                },
            )
            started = await guarded(
                service.handle(ServiceRequest(op="start", params={"region": START}))
            )
            sid = started.session_id
            zoomed = await guarded(
                service.handle(ServiceRequest(op="zoom_in", session_id=sid))
            )
            assert started.ok and zoomed.ok

            # The prefetch accelerator died every time; selections must
            # equal a plain non-prefetching session's.
            direct = MapSession(dataset, k=8)
            from repro.geo import BoundingBox

            assert started.selection == [
                int(i) for i in direct.start(BoundingBox(*START)).visible
            ]
            assert zoomed.selection == [
                int(i) for i in direct.zoom_in().visible
            ]

        asyncio.run(go())


class TestBreakerChaos:
    def test_breaker_trips_then_recovers(self):
        async def go():
            now = [0.0]
            breaker = CircuitBreaker(
                failure_threshold=2, reset_after_s=5.0,
                clock=lambda: now[0], name="service",
            )
            injector = FaultInjector(seed=0)
            injector.arm(SERVICE_HANDLE, max_fires=8)
            service = make_service(
                fault_injector=injector,
                breaker=breaker,
                admission=AdmissionController(breaker=breaker),
                retry_policy=RetryPolicy(max_attempts=1),
            )
            # Failures trip the breaker...
            for _ in range(2):
                response = await guarded(
                    service.handle(ServiceRequest(op="start", params={"region": START}))
                )
                assert response.error_type == "FaultInjected"
            rejected = await guarded(
                service.handle(ServiceRequest(op="start", params={"region": START}))
            )
            assert rejected.error_type == "CircuitOpen"
            assert rejected.ok is False
            # ...cool-down admits a probe; the fault rule still has
            # fires left, so the probe fails and the breaker re-opens...
            now[0] = 6.0
            probe = await guarded(
                service.handle(ServiceRequest(op="start", params={"region": START}))
            )
            assert probe.error_type == "FaultInjected"
            assert breaker.state == "open"
            # ...until the fault heals and a later probe closes it.
            injector.disarm(SERVICE_HANDLE)
            now[0] = 12.0
            healed = await guarded(
                service.handle(ServiceRequest(op="start", params={"region": START}))
            )
            assert healed.ok
            assert breaker.state == "closed"

        asyncio.run(go())
