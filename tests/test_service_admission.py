"""Admission controller: queueing, shedding, breaker wiring."""

import asyncio

import pytest

from repro import CircuitBreaker, FaultInjector, MetricsRegistry
from repro.robustness import (
    SERVICE_ADMIT,
    CircuitOpen,
    Deadline,
    DeadlineExceeded,
    FaultInjected,
    InvalidNavigation,
    OverloadShed,
)
from repro.service import AdmissionController, is_system_failure


def run(coro):
    return asyncio.run(coro)


class TestIsSystemFailure:
    def test_faults_and_deadlines_count(self):
        assert is_system_failure(FaultInjected("x"))
        assert is_system_failure(DeadlineExceeded("x"))
        assert is_system_failure(RuntimeError("bug"))

    def test_user_errors_do_not(self):
        assert not is_system_failure(InvalidNavigation("x"))
        assert not is_system_failure(OverloadShed("queue_full"))
        assert not is_system_failure(KeyboardInterrupt())


class TestAdmission:
    def test_admits_when_capacity_free(self):
        async def go():
            ctl = AdmissionController(max_concurrency=2)
            async with ctl.admit() as ticket:
                assert ctl.active == 1
                assert ticket.queue_wait_s == 0.0
            assert ctl.active == 0

        run(go())

    def test_validates_parameters(self):
        with pytest.raises(ValueError):
            AdmissionController(max_concurrency=0)
        with pytest.raises(ValueError):
            AdmissionController(max_queue_depth=-1)
        with pytest.raises(ValueError):
            AdmissionController(queue_timeout_s=-0.1)

    def test_queues_until_slot_frees(self):
        async def go():
            ctl = AdmissionController(max_concurrency=1, queue_timeout_s=5.0)
            release = asyncio.Event()
            admitted = asyncio.Event()

            async def holder():
                async with ctl.admit():
                    admitted.set()
                    await release.wait()

            async def waiter():
                await admitted.wait()
                async with ctl.admit() as ticket:
                    return ticket.queue_wait_s

            holder_task = asyncio.ensure_future(holder())
            waiter_task = asyncio.ensure_future(waiter())
            await admitted.wait()
            await asyncio.sleep(0.02)
            assert ctl.queue_depth == 1
            release.set()
            waited = await waiter_task
            await holder_task
            assert waited > 0.0

        run(go())

    def test_sheds_queue_full(self):
        async def go():
            ctl = AdmissionController(max_concurrency=1, max_queue_depth=0)
            release = asyncio.Event()
            admitted = asyncio.Event()

            async def holder():
                async with ctl.admit():
                    admitted.set()
                    await release.wait()

            task = asyncio.ensure_future(holder())
            await admitted.wait()
            with pytest.raises(OverloadShed) as exc_info:
                async with ctl.admit():
                    pass
            assert exc_info.value.reason == "queue_full"
            release.set()
            await task

        run(go())

    def test_sheds_queue_timeout(self):
        async def go():
            ctl = AdmissionController(
                max_concurrency=1, max_queue_depth=4, queue_timeout_s=0.01
            )
            release = asyncio.Event()
            admitted = asyncio.Event()

            async def holder():
                async with ctl.admit():
                    admitted.set()
                    await release.wait()

            task = asyncio.ensure_future(holder())
            await admitted.wait()
            with pytest.raises(OverloadShed) as exc_info:
                async with ctl.admit():
                    pass
            assert exc_info.value.reason == "queue_timeout"
            assert ctl.queue_depth == 0  # waiter cleaned up
            release.set()
            await task

        run(go())

    def test_sheds_expired_deadline_without_queueing(self):
        async def go():
            ctl = AdmissionController(max_concurrency=1)
            with pytest.raises(OverloadShed) as exc_info:
                async with ctl.admit(Deadline(expires_at=0.0)):
                    pass
            assert exc_info.value.reason == "deadline"

        run(go())

    def test_deadline_caps_queueing_allowance(self):
        async def go():
            ctl = AdmissionController(
                max_concurrency=1, max_queue_depth=4, queue_timeout_s=30.0
            )
            release = asyncio.Event()
            admitted = asyncio.Event()

            async def holder():
                async with ctl.admit():
                    admitted.set()
                    await release.wait()

            task = asyncio.ensure_future(holder())
            await admitted.wait()
            with pytest.raises(OverloadShed) as exc_info:
                async with ctl.admit(Deadline.after(0.02)):
                    pass
            assert exc_info.value.reason == "queue_timeout"
            release.set()
            await task

        run(go())

    def test_slot_released_when_body_raises(self):
        async def go():
            ctl = AdmissionController(max_concurrency=1)
            with pytest.raises(RuntimeError):
                async with ctl.admit():
                    raise RuntimeError("handler blew up")
            assert ctl.active == 0
            async with ctl.admit():  # capacity was not leaked
                pass

        run(go())

    def test_metrics_and_gauges(self):
        async def go():
            metrics = MetricsRegistry()
            ctl = AdmissionController(max_concurrency=2, metrics=metrics)
            async with ctl.admit():
                assert metrics.gauge("service.active") == 1
            assert metrics.count("service.admitted") == 1
            assert metrics.gauge("service.active") == 0

        run(go())


class TestAdmissionFaults:
    def test_admit_fault_rejects_before_queueing(self):
        async def go():
            injector = FaultInjector(seed=0).arm(SERVICE_ADMIT)
            ctl = AdmissionController(fault_injector=injector)
            with pytest.raises(FaultInjected):
                async with ctl.admit():
                    pass
            assert ctl.active == 0
            assert ctl.queue_depth == 0

        run(go())


class TestBreakerWiring:
    def test_open_breaker_rejects_fast(self):
        async def go():
            breaker = CircuitBreaker(failure_threshold=1, name="svc")
            breaker.record_failure()
            assert breaker.state == "open"
            ctl = AdmissionController(breaker=breaker)
            with pytest.raises(CircuitOpen):
                async with ctl.admit():
                    pass

        run(go())

    def test_system_failures_trip_user_errors_do_not(self):
        async def go():
            breaker = CircuitBreaker(failure_threshold=2, name="svc")
            ctl = AdmissionController(breaker=breaker)
            # User errors: breaker stays closed however many occur.
            for _ in range(5):
                with pytest.raises(InvalidNavigation):
                    async with ctl.admit():
                        raise InvalidNavigation("bad pan")
            assert breaker.state == "closed"
            # System failures: trips after the threshold.
            for _ in range(2):
                with pytest.raises(RuntimeError):
                    async with ctl.admit():
                        raise RuntimeError("boom")
            assert breaker.state == "open"

        run(go())

    def test_breaker_recovers_through_half_open(self):
        async def go():
            now = [0.0]
            breaker = CircuitBreaker(
                failure_threshold=1, reset_after_s=10.0,
                clock=lambda: now[0], name="svc",
            )
            ctl = AdmissionController(breaker=breaker)
            with pytest.raises(RuntimeError):
                async with ctl.admit():
                    raise RuntimeError("boom")
            with pytest.raises(CircuitOpen):
                async with ctl.admit():
                    pass
            now[0] = 11.0  # cool-down elapses -> half-open probe
            async with ctl.admit():
                pass
            assert breaker.state == "closed"

        run(go())
