"""Retry policy, budget, and run_with_retry semantics."""

import asyncio

import numpy as np
import pytest

from repro import MetricsRegistry
from repro.robustness import Deadline, FaultInjected, RetryBudgetExhausted
from repro.service import RetryBudget, RetryPolicy, run_with_retry


def run(coro):
    return asyncio.run(coro)


class TestRetryPolicy:
    def test_validates(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.5)
        with pytest.raises(ValueError):
            RetryPolicy(base_delay_s=-1.0)

    def test_delay_grows_and_caps(self):
        policy = RetryPolicy(
            base_delay_s=0.01, multiplier=2.0, max_delay_s=0.05, jitter=0.0
        )
        rng = np.random.default_rng(0)
        delays = [policy.delay_for(n, rng) for n in (1, 2, 3, 4, 5)]
        assert delays == [
            pytest.approx(0.01), pytest.approx(0.02), pytest.approx(0.04),
            pytest.approx(0.05), pytest.approx(0.05),
        ]

    def test_jitter_stays_in_band(self):
        policy = RetryPolicy(base_delay_s=0.1, jitter=0.5, max_delay_s=1.0)
        rng = np.random.default_rng(7)
        for _ in range(200):
            delay = policy.delay_for(1, rng)
            assert 0.05 <= delay <= 0.1

    def test_rejects_bad_attempt(self):
        with pytest.raises(ValueError):
            RetryPolicy().delay_for(0, np.random.default_rng(0))


class TestRetryBudget:
    def test_deposit_and_spend(self):
        budget = RetryBudget(tokens_per_request=1.0, max_tokens=2.0)
        assert budget.try_spend()
        assert budget.try_spend()
        assert not budget.try_spend()  # drained
        budget.on_request()
        assert budget.try_spend()

    def test_deposits_cap_at_max(self):
        budget = RetryBudget(tokens_per_request=5.0, max_tokens=3.0)
        for _ in range(10):
            budget.on_request()
        assert budget.tokens == 3.0

    def test_validates(self):
        with pytest.raises(ValueError):
            RetryBudget(tokens_per_request=-1.0)
        with pytest.raises(ValueError):
            RetryBudget(max_tokens=0.0)


class TestRunWithRetry:
    @staticmethod
    async def _no_sleep(_delay):
        return None

    def test_first_try_success(self):
        async def go():
            async def fn():
                return 42

            result, attempts = await run_with_retry(
                fn, policy=RetryPolicy(), rng=np.random.default_rng(0),
                sleep=self._no_sleep,
            )
            assert (result, attempts) == (42, 1)

        run(go())

    def test_retries_transient_fault(self):
        async def go():
            calls = {"n": 0}

            async def fn():
                calls["n"] += 1
                if calls["n"] < 3:
                    raise FaultInjected("transient")
                return "ok"

            metrics = MetricsRegistry()
            result, attempts = await run_with_retry(
                fn, policy=RetryPolicy(max_attempts=3),
                rng=np.random.default_rng(0), sleep=self._no_sleep,
                metrics=metrics,
            )
            assert (result, attempts) == ("ok", 3)
            assert metrics.count("service.retries") == 2

        run(go())

    def test_exhausted_attempts_reraise(self):
        async def go():
            async def fn():
                raise FaultInjected("always")

            with pytest.raises(FaultInjected):
                await run_with_retry(
                    fn, policy=RetryPolicy(max_attempts=2),
                    rng=np.random.default_rng(0), sleep=self._no_sleep,
                )

        run(go())

    def test_non_retryable_propagates_immediately(self):
        async def go():
            calls = {"n": 0}

            async def fn():
                calls["n"] += 1
                raise ValueError("user error")

            with pytest.raises(ValueError):
                await run_with_retry(
                    fn, policy=RetryPolicy(max_attempts=5),
                    rng=np.random.default_rng(0), sleep=self._no_sleep,
                )
            assert calls["n"] == 1

        run(go())

    def test_budget_denial_raises_typed_error(self):
        async def go():
            async def fn():
                raise FaultInjected("transient")

            budget = RetryBudget(tokens_per_request=0.0, max_tokens=1.0)
            budget.try_spend()  # drain
            metrics = MetricsRegistry()
            with pytest.raises(RetryBudgetExhausted):
                await run_with_retry(
                    fn, policy=RetryPolicy(max_attempts=3),
                    rng=np.random.default_rng(0), budget=budget,
                    sleep=self._no_sleep, metrics=metrics,
                )
            assert metrics.count("service.retry_budget_exhausted") == 1

        run(go())

    def test_deadline_too_tight_reraises_cause(self):
        async def go():
            async def fn():
                raise FaultInjected("transient")

            # Backoff delay (>= 2.5ms with default jitter) cannot fit in
            # an already-expired deadline: the fault must surface, not a
            # deadline error, and without sleeping.
            with pytest.raises(FaultInjected):
                await run_with_retry(
                    fn, policy=RetryPolicy(max_attempts=3),
                    rng=np.random.default_rng(0),
                    deadline=Deadline(expires_at=0.0),
                    sleep=self._no_sleep,
                )

        run(go())

    def test_sleeps_follow_policy(self):
        async def go():
            slept = []

            async def fake_sleep(delay):
                slept.append(delay)

            calls = {"n": 0}

            async def fn():
                calls["n"] += 1
                if calls["n"] < 4:
                    raise FaultInjected("transient")
                return "ok"

            policy = RetryPolicy(
                max_attempts=4, base_delay_s=0.01, multiplier=2.0,
                max_delay_s=1.0, jitter=0.0,
            )
            await run_with_retry(
                fn, policy=policy, rng=np.random.default_rng(0),
                sleep=fake_sleep,
            )
            assert slept == [
                pytest.approx(0.01), pytest.approx(0.02), pytest.approx(0.04)
            ]

        run(go())
