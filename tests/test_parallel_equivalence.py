"""Batched and parallel execution is bit-identical to the serial engine.

The determinism contract of ``repro.parallel``: for any batch size and
any worker count, the greedy returns the same selection, the same
score bits, and the same counter totals as the scalar sequential
engine.  These tests drive the contract across every similarity model,
the memoizing cache, both aggregations, and all three pool backends.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest
from scipy import sparse

from repro import GeoDataset, RegionQuery, WorkerPool, greedy_select
from repro.cache import SimilarityCache
from repro.core.problem import Aggregation
from repro.core.scoring import MarginalGainState
from repro.core.session import MapSession
from repro.geo import BoundingBox
from repro.parallel import (
    DEFAULT_BATCH_SIZE,
    SharedArrayPack,
    iter_blocks,
    resolve_backend,
    resolve_workers,
)
from repro.parallel.config import effective_batch_size, resolve_batch_size
from repro.parallel.modelspec import build_model, model_spec
from repro.parallel.sharedmem import attach_array, release_attachments
from repro.similarity import (
    CombinedSimilarity,
    CosineTextSimilarity,
    EuclideanSimilarity,
    GaussianSpatialSimilarity,
    JaccardSimilarity,
    MatrixSimilarity,
    MinHashSimilarity,
)


def _make_dataset(seed: int, n: int = 400, similarity=None) -> GeoDataset:
    gen = np.random.default_rng(seed)
    return GeoDataset.build(
        gen.random(n), gen.random(n), weights=gen.random(n),
        similarity=similarity,
    )


def _query(k: int = 10) -> RegionQuery:
    region = BoundingBox(0.1, 0.1, 0.9, 0.9)
    return RegionQuery.with_theta_fraction(region, k=k, theta_fraction=0.01)


# ----------------------------------------------------------------------
# Config resolution
# ----------------------------------------------------------------------


class TestConfig:
    def test_resolve_workers(self):
        assert resolve_workers(None) == 0
        assert resolve_workers(0) == 0
        assert resolve_workers(3) == 3
        assert resolve_workers("auto") >= 1
        with pytest.raises(ValueError):
            resolve_workers(-1)
        with pytest.raises(ValueError):
            resolve_workers("many")

    def test_resolve_batch_size(self):
        assert resolve_batch_size(None) == DEFAULT_BATCH_SIZE
        assert resolve_batch_size(7) == 7
        with pytest.raises(ValueError):
            resolve_batch_size(0)

    def test_resolve_backend_serial_when_no_workers(self):
        assert resolve_backend("auto", 0) == "serial"
        assert resolve_backend("process", 0) == "serial"

    def test_resolve_backend_cache_degrades_to_serial(self):
        cache = SimilarityCache(EuclideanSimilarity([0.0], [0.0]))
        assert resolve_backend("thread", 4, cache) == "serial"
        assert resolve_backend("auto", 4, cache) == "serial"

    def test_resolve_backend_process_needs_spec(self):
        class NoSpec:
            thread_safe = True

        assert resolve_backend("process", 4, NoSpec()) == "thread"
        model = EuclideanSimilarity([0.0], [0.0])
        assert resolve_backend("process", 4, model) == "process"

    def test_resolve_backend_rejects_unknown(self):
        with pytest.raises(ValueError):
            resolve_backend("gpu", 4)

    def test_effective_batch_size_follows_batch_friendly(self):
        gen = np.random.default_rng(0)
        spatial = EuclideanSimilarity(gen.random(10), gen.random(10))
        matrix = MatrixSimilarity.random(10, gen)
        # Spatial kernels are scalar-optimal: default stays 1.
        assert not spatial.batch_friendly
        assert effective_batch_size(None, spatial) == 1
        # ...unless explicitly asked, or a pool needs blocks to shard.
        assert effective_batch_size(64, spatial) == 64
        assert (
            effective_batch_size(None, spatial, pool=object())
            == DEFAULT_BATCH_SIZE
        )
        assert matrix.batch_friendly
        assert effective_batch_size(None, matrix) == DEFAULT_BATCH_SIZE
        # The cache and combined models follow their components.
        assert not SimilarityCache(spatial).batch_friendly
        assert CombinedSimilarity(
            [spatial, matrix], [0.5, 0.5]
        ).batch_friendly
        assert not CombinedSimilarity(
            [spatial, GaussianSpatialSimilarity(
                gen.random(10), gen.random(10), sigma=0.1
            )],
            [0.5, 0.5],
        ).batch_friendly

    def test_iter_blocks_covers_in_order(self):
        ids = np.arange(10, dtype=np.int64)
        chunks = list(iter_blocks(ids, 4))
        assert [off for off, _ in chunks] == [0, 4, 8]
        assert np.array_equal(np.concatenate([b for _, b in chunks]), ids)
        with pytest.raises(ValueError):
            list(iter_blocks(ids, 0))


# ----------------------------------------------------------------------
# Shared-memory round trip
# ----------------------------------------------------------------------


class TestSharedMemory:
    def test_pack_attach_roundtrip(self):
        arrays = {
            "a": np.arange(12, dtype=np.float64).reshape(3, 4),
            "b": np.array([1, 2, 3], dtype=np.int64),
            "empty": np.empty(0, dtype=np.float64),
        }
        with SharedArrayPack(arrays) as pack:
            try:
                for key, original in arrays.items():
                    view = attach_array(pack.handles[key])
                    assert view.shape == original.shape
                    assert view.dtype == original.dtype
                    assert np.array_equal(view, original)
                # Attachments are cached per segment.
                first = attach_array(pack.handles["a"])
                assert attach_array(pack.handles["a"]) is first
            finally:
                release_attachments()

    def test_release_keeps_named_segments(self):
        with SharedArrayPack({"x": np.ones(4)}) as pack:
            try:
                handle = pack.handles["x"]
                attach_array(handle)
                release_attachments(keep={handle.name})
                # Still attached: the cached view survives.
                assert np.array_equal(attach_array(handle), np.ones(4))
            finally:
                release_attachments()

    def test_close_is_idempotent(self):
        pack = SharedArrayPack({"x": np.ones(2)})
        pack.close()
        pack.close()


# ----------------------------------------------------------------------
# Block kernels match scalar kernels, model by model
# ----------------------------------------------------------------------


def _models():
    gen = np.random.default_rng(42)
    n = 60
    xs, ys = gen.random(n), gen.random(n)
    texts = sparse.random(
        n, 30, density=0.3, random_state=7, format="csr", dtype=np.float64
    )
    sets = [
        set(gen.integers(0, 40, size=gen.integers(1, 10)).tolist())
        for _ in range(n)
    ]
    return {
        "euclidean": EuclideanSimilarity(xs, ys),
        "gaussian": GaussianSpatialSimilarity(xs, ys, sigma=0.2),
        "matrix": MatrixSimilarity.random(n, gen),
        "cosine": CosineTextSimilarity(texts),
        "jaccard": JaccardSimilarity(sets),
        "minhash": MinHashSimilarity(sets, num_hashes=32, seed=5),
        "combined": CombinedSimilarity(
            [EuclideanSimilarity(xs, ys),
             GaussianSpatialSimilarity(xs, ys, sigma=0.2)],
            [0.3, 0.7],
        ),
    }


@pytest.mark.parametrize("name", sorted(_models()))
def test_rows_kernel_bit_identical_to_scalar(name):
    model = _models()[name]
    gen = np.random.default_rng(0)
    ids = np.sort(gen.choice(len(model), size=25, replace=False))
    block = np.sort(gen.choice(len(model), size=9, replace=False))
    row = model.row_kernel(ids)
    rows = model.rows_kernel(ids)
    got = np.asarray(rows(block))
    assert got.shape == (len(block), len(ids))
    for b, obj in enumerate(block):
        expected = row(int(obj))
        assert np.array_equal(got[b], expected), (
            f"{name} block row {b} (object {obj}) diverges from scalar"
        )


@pytest.mark.parametrize("name", sorted(_models()))
def test_process_spec_rebuild_matches(name):
    """A model rebuilt from its process_spec evaluates identically."""
    model = _models()[name]
    spec = model_spec(model)
    assert spec is not None, f"{name} should support the process backend"
    kind, params, arrays = spec
    rebuilt = build_model(
        kind, params, {k: np.asarray(v) for k, v in arrays.items()}
    )
    gen = np.random.default_rng(1)
    ids = np.sort(gen.choice(len(model), size=20, replace=False))
    block = np.sort(gen.choice(len(model), size=7, replace=False))
    assert np.array_equal(
        np.asarray(rebuilt.rows_kernel(ids)(block)),
        np.asarray(model.rows_kernel(ids)(block)),
    )


def test_cache_rows_kernel_serves_hits_and_fills_misses():
    model = EuclideanSimilarity(*np.random.default_rng(8).random((2, 50)))
    cache = SimilarityCache(model)
    ids = np.arange(50, dtype=np.int64)
    rows = cache.rows_kernel(ids)
    block = np.array([3, 7, 11], dtype=np.int64)
    first = rows(block)
    assert cache.counters()["misses"] == 3
    again = rows(block)
    assert cache.counters()["hits"] == 3
    assert np.array_equal(first, again)
    reference = model.rows_kernel(ids)(block)
    assert np.array_equal(first, reference)


# ----------------------------------------------------------------------
# Gain state: batching and the SUM memo
# ----------------------------------------------------------------------


class TestGainState:
    def test_batch_gains_match_scalar(self):
        dataset = _make_dataset(1)
        ids = np.arange(len(dataset), dtype=np.int64)
        for agg in (Aggregation.MAX, Aggregation.SUM):
            scalar = MarginalGainState(dataset, ids, agg)
            batched = MarginalGainState(dataset, ids, agg)
            block = np.arange(0, 64, dtype=np.int64)
            expected = np.array([scalar.gain(int(o)) for o in block])
            got = batched.batch_gains(block)
            assert np.array_equal(got, expected)
            assert batched.gain_evaluations == scalar.gain_evaluations
            assert batched.kernel_rows == scalar.kernel_rows
            assert batched.kernel_calls == 1

    def test_sum_gains_memoized(self):
        dataset = _make_dataset(2, n=100)
        ids = np.arange(100, dtype=np.int64)
        state = MarginalGainState(dataset, ids, Aggregation.SUM)
        first = state.gain(5)
        rows_after_first = state.kernel_rows
        assert state.gain(5) == first  # repeated pop: memo hit
        assert state.kernel_rows == rows_after_first
        assert state.gain_evaluations == 2
        # batch_gains populates the memo too.
        state.batch_gains(np.array([8, 9], dtype=np.int64))
        rows_after_batch = state.kernel_rows
        state.gain(8)
        assert state.kernel_rows == rows_after_batch

    def test_max_gains_not_memoized(self):
        dataset = _make_dataset(3, n=100)
        ids = np.arange(100, dtype=np.int64)
        state = MarginalGainState(dataset, ids, Aggregation.MAX)
        state.gain(5)
        state.gain(5)
        assert state.kernel_rows == 2


# ----------------------------------------------------------------------
# Batched conflict suppression
# ----------------------------------------------------------------------


class TestConflictsWithMany:
    def test_matches_per_object_union(self):
        dataset = _make_dataset(4, n=300)
        gen = np.random.default_rng(9)
        sources = np.sort(gen.choice(300, size=12, replace=False))
        for theta in (0.0, 0.02, 0.1):
            batched = dataset.conflicts_with_many(sources, theta)
            union = np.unique(
                np.concatenate(
                    [dataset.conflicts_with(int(s), theta) for s in sources]
                )
            ) if theta > 0.0 else np.empty(0, dtype=np.int64)
            assert np.array_equal(batched, union)

    def test_empty_sources(self):
        dataset = _make_dataset(5, n=50)
        out = dataset.conflicts_with_many(np.empty(0, dtype=np.int64), 0.1)
        assert len(out) == 0


# ----------------------------------------------------------------------
# The property: selections are bit-identical across the whole grid
# ----------------------------------------------------------------------


@pytest.mark.parametrize("seed", [11, 12, 13])
@pytest.mark.parametrize("aggregation", [Aggregation.MAX, Aggregation.SUM])
def test_selection_identical_across_workers_and_batches(seed, aggregation):
    dataset = _make_dataset(seed)
    query = _query()
    reference = greedy_select(
        dataset, query, aggregation=aggregation, batch_size=1
    )
    for workers, batch_size, use_cache in [
        (0, 7, False),
        (0, None, True),
        (1, 32, False),
        (4, 16, False),
        (4, 32, True),
    ]:
        ds = dataset
        if use_cache:
            ds = dataclasses.replace(
                dataset, similarity=SimilarityCache(dataset.similarity)
            )
        pool = None
        if workers:
            pool = WorkerPool(
                workers, backend="thread", similarity=ds.similarity
            )
        try:
            result = greedy_select(
                ds, query, aggregation=aggregation,
                batch_size=batch_size, pool=pool,
            )
        finally:
            if pool is not None:
                pool.close()
        label = f"workers={workers} batch={batch_size} cache={use_cache}"
        assert np.array_equal(result.selected, reference.selected), label
        assert result.score == reference.score, label
        assert (
            result.stats["gain_evaluations"]
            == reference.stats["gain_evaluations"]
        ), label


def test_selection_identical_with_process_backend():
    dataset = _make_dataset(21, n=250)
    query = _query(k=6)
    reference = greedy_select(dataset, query, batch_size=1)
    with WorkerPool(
        2, backend="process", similarity=dataset.similarity
    ) as pool:
        assert pool.backend == "process"
        result = greedy_select(dataset, query, batch_size=32, pool=pool)
        # Same pool again: workers reuse their cached model.
        repeat = greedy_select(dataset, query, batch_size=32, pool=pool)
    assert np.array_equal(result.selected, reference.selected)
    assert result.score == reference.score
    assert np.array_equal(repeat.selected, reference.selected)


def test_stats_record_pool_and_batching():
    dataset = _make_dataset(31)
    query = _query()
    with WorkerPool(
        2, backend="thread", similarity=dataset.similarity
    ) as pool:
        result = greedy_select(dataset, query, batch_size=16, pool=pool)
    assert result.stats["batch_size"] == 16
    assert result.stats["pool_workers"] == 2
    assert result.stats["pool_backend"] == "thread"
    assert result.stats["kernel_calls"] < result.stats["gain_evaluations"]
    scalar = greedy_select(dataset, query, batch_size=1)
    assert scalar.stats["kernel_calls"] == scalar.stats["kernel_rows"]


# ----------------------------------------------------------------------
# Pool fan-out surface
# ----------------------------------------------------------------------


class TestWorkerPool:
    def test_run_all_ordered_with_errors(self):
        def boom():
            raise RuntimeError("nope")

        with WorkerPool(2, backend="thread") as pool:
            outcomes = pool.run_all([lambda: 1, boom, lambda: 3])
        assert outcomes[0] == (1, None)
        assert outcomes[1][0] is None
        assert isinstance(outcomes[1][1], RuntimeError)
        assert outcomes[2] == (3, None)

    def test_run_all_serial_fallback(self):
        with WorkerPool(0) as pool:
            assert not pool.concurrent
            outcomes = pool.run_all([lambda: "a", lambda: "b"])
        assert [r for r, _ in outcomes] == ["a", "b"]

    def test_map_ordered(self):
        with WorkerPool(3, backend="thread") as pool:
            assert pool.map_ordered(lambda v: v * v, range(10)) == [
                v * v for v in range(10)
            ]

    def test_close_idempotent_and_usable_serial(self):
        pool = WorkerPool(2, backend="thread")
        pool.close()
        pool.close()


# ----------------------------------------------------------------------
# Session-level equivalence
# ----------------------------------------------------------------------


def test_session_parallel_trace_identical():
    dataset = _make_dataset(41, n=800)
    region = BoundingBox(0.1, 0.1, 0.8, 0.8)

    def run(**kwargs):
        with MapSession(dataset, k=12, prefetch=True, **kwargs) as session:
            steps = [session.start(region)]
            steps.append(session.zoom_in(0.6))
            steps.append(session.pan(0.05, 0.0))
            steps.append(session.zoom_out(1.5))
        return (
            [s.result.selected.tolist() for s in steps],
            [s.result.score for s in steps],
        )

    base = run()
    parallel = run(workers=4, batch_size=32)
    assert parallel == base
    cached = run(
        workers=4, batch_size=32,
        similarity_cache=True, equivalence_check=True,
    )
    assert cached == base


def test_session_concurrent_prefetch_populates_all_kinds():
    dataset = _make_dataset(43, n=500)
    with MapSession(dataset, k=8, prefetch=True, workers=2) as session:
        session.start(BoundingBox(0.2, 0.2, 0.7, 0.7))
        assert set(session._prefetch_data) == {"zoom_in", "zoom_out", "pan"}
        assert session.prefetch_errors == {}
        assert session.metrics.count("parallel.fanouts") >= 1
