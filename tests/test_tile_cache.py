"""Functional tests for the tile store, cache, and session wiring."""

import numpy as np
import pytest

from repro import GeoDataset, MapSession
from repro.geo import BoundingBox
from repro.metrics import MetricsRegistry
from repro.tiles import (
    BOUND_SAFETY,
    StoreMeta,
    Tile,
    TileKey,
    TileScheme,
    TileSelectionCache,
    TileStore,
    bin_ids_per_tile,
    build_tile,
    build_tile_store,
    dataset_fingerprint,
)

K = 12


def _make_dataset(seed: int, n: int = 1200) -> GeoDataset:
    gen = np.random.default_rng(seed)
    return GeoDataset.build(
        gen.random(n), gen.random(n), weights=0.1 + 0.9 * gen.random(n)
    )


@pytest.fixture(scope="module")
def dataset() -> GeoDataset:
    return _make_dataset(9)


@pytest.fixture(scope="module")
def store(dataset) -> TileStore:
    scheme = TileScheme(frame=dataset.frame(), max_zoom=3)
    return build_tile_store(dataset, scheme=scheme)


@pytest.fixture
def region() -> BoundingBox:
    return BoundingBox(0.2, 0.2, 0.45, 0.45)


def _assert_steps_equal(a, b):
    assert a.result.selected.tolist() == b.result.selected.tolist()
    assert a.result.score == b.result.score


class TestBuild:
    def test_bin_ids_partition(self, dataset, store):
        groups = bin_ids_per_tile(dataset, store.scheme, 2)
        all_ids = np.concatenate(list(groups.values()))
        assert len(all_ids) == len(dataset)
        assert len(np.unique(all_ids)) == len(dataset)
        for key, ids in groups.items():
            assert np.all(np.diff(ids) > 0)
            box = store.scheme.tile_box(key)
            assert bool(
                box.contains_many(dataset.xs[ids], dataset.ys[ids]).all()
            )

    def test_store_covers_requested_zooms(self, dataset, store):
        zooms = {key.zoom for key in store.keys()}
        assert zooms == set(range(4))
        assert store.meta.zooms_built == [0, 1, 2, 3]
        assert store.meta.fingerprint == dataset_fingerprint(dataset)

    def test_tile_selection_feasible(self, dataset, store):
        for key in store.keys():
            tile = store.get(key, touch=False)
            assert len(tile.selection) <= store.meta.k
            assert set(tile.selection).issubset(set(tile.ids))

    def test_source_masses_match_neighborhood(self, dataset, store):
        # Summed per-source masses must equal the monolithic 3x3 mass
        # computed directly from the similarity model.
        scheme = store.scheme
        key = next(k for k in store.keys() if k.zoom == 2)
        tile = store.get(key, touch=False)
        neighborhood_ids = np.unique(
            np.concatenate(
                [
                    dataset.objects_in(scheme.tile_box(source))
                    for source in scheme.neighborhood_keys(key)
                ]
            )
        )
        expected = dataset.similarity.weighted_sims_sum(
            tile.ids, neighborhood_ids, dataset.weights[neighborhood_ids]
        )
        # Objects on shared source edges may legally double-count
        # across sources (bounds only get looser), so >= with a small
        # relative ceiling rather than exact equality.
        assert np.all(tile.raw_sums >= expected - 1e-12)
        assert np.all(tile.raw_sums <= expected * 2.0 + 1e-12)


class TestTileBounds:
    def test_partial_source_mask_tightens(self, dataset, store):
        key = next(k for k in store.keys() if k.zoom == 2)
        tile = store.get(key, touch=False)
        full = tile.bounds_for(tile.ids, 100)
        half_mask = np.zeros(len(tile.source_keys), dtype=bool)
        half_mask[0] = True
        partial = tile.bounds_for(tile.ids, 100, source_mask=half_mask)
        assert np.all(partial <= full + 1e-15)

    def test_safety_inflation_applied(self, dataset, store):
        key = next(k for k in store.keys() if k.zoom == 2)
        tile = store.get(key, touch=False)
        bounds = tile.bounds_for(tile.ids, 100)
        expected = tile.raw_sums * (1.0 + BOUND_SAFETY) / 100.0
        assert np.allclose(bounds, expected, rtol=0, atol=0)

    def test_unknown_ids_get_nan(self, dataset, store):
        key = next(k for k in store.keys() if k.zoom == 2)
        tile = store.get(key, touch=False)
        foreign = np.setdiff1d(
            np.arange(len(dataset), dtype=np.int64), tile.ids
        )[:5]
        bounds = tile.bounds_for(foreign, 100)
        assert np.all(np.isnan(bounds))

    def test_rejects_bad_inputs(self, dataset, store):
        tile = store.get(TileKey(2, 1, 1), touch=False)  # 9 sources
        assert len(tile.source_keys) == 9
        with pytest.raises(ValueError):
            tile.bounds_for(tile.ids, 0)
        with pytest.raises(ValueError):
            tile.bounds_for(tile.ids, 10, source_mask=np.array([True]))


class TestSessionIdentity:
    def test_navigation_identical_to_cold(self, dataset, store, region):
        tiles = TileSelectionCache(store, min_candidates=0)
        tiled = MapSession(dataset, k=K, tiles=tiles)
        cold = MapSession(dataset, k=K)
        pairs = [
            (tiled.start(region), cold.start(region)),
            (tiled.zoom_in(0.7), cold.zoom_in(0.7)),
            (
                tiled.pan(dx=0.3 * tiled.region.width),
                cold.pan(dx=0.3 * cold.region.width),
            ),
            (tiled.zoom_out(1.3), cold.zoom_out(1.3)),
        ]
        for a, b in pairs:
            _assert_steps_equal(a, b)
        assert pairs[0][0].tile_seeded

    def test_store_passed_directly_is_wrapped(self, dataset, store, region):
        session = MapSession(dataset, k=K, tiles=store)
        assert isinstance(session.tiles, TileSelectionCache)
        step = session.start(region)
        # The wrapper gets production defaults: this small dataset sits
        # below min_candidates, so the heuristic routes the step cold
        # (and identity holds regardless).
        assert not step.tile_seeded
        _assert_steps_equal(step, MapSession(dataset, k=K).start(region))

    def test_rejects_wrong_tiles_type(self, dataset):
        with pytest.raises(TypeError):
            MapSession(dataset, k=K, tiles=object())


class TestColdFallbacks:
    def test_min_candidates_skip(self, dataset, store, region):
        metrics = MetricsRegistry()
        tiles = TileSelectionCache(
            store, min_candidates=10**6, metrics=metrics
        )
        session = MapSession(dataset, k=K, tiles=tiles)
        step = session.start(region)
        assert not step.tile_seeded
        assert metrics.count("tiles.skipped.small") == 1

    def test_oversized_region_runs_cold(self, dataset, store):
        metrics = MetricsRegistry()
        tiles = TileSelectionCache(store, min_candidates=0, metrics=metrics)
        session = MapSession(dataset, k=K, tiles=tiles)
        frame = dataset.frame()
        step = session.start(frame.expanded(1.5))
        assert not step.tile_seeded
        assert metrics.count("tiles.skipped.zoom") == 1
        _assert_steps_equal(
            step, MapSession(dataset, k=K).start(frame.expanded(1.5))
        )

    def test_empty_store_runs_cold(self, dataset, region):
        metrics = MetricsRegistry()
        empty = TileStore(
            scheme=TileScheme(frame=dataset.frame(), max_zoom=3),
            meta=StoreMeta(
                fingerprint=dataset_fingerprint(dataset),
                objects=len(dataset),
                k=K,
                theta_fraction=0.02,
                frame=dataset.frame(),
                max_zoom=3,
            ),
        )
        tiles = TileSelectionCache(empty, min_candidates=0, metrics=metrics)
        session = MapSession(dataset, k=K, tiles=tiles)
        step = session.start(region)
        assert not step.tile_seeded
        assert metrics.count("tiles.skipped.coverage") == 1
        _assert_steps_equal(step, MapSession(dataset, k=K).start(region))


class TestSwapDataset:
    def test_no_stale_tile_reuse_after_swap(self, dataset, store, region):
        # Regression: a session that swaps datasets mid-flight must
        # never seed from tiles built against the old dataset.
        metrics = MetricsRegistry()
        tiles = TileSelectionCache(store, min_candidates=0, metrics=metrics)
        session = MapSession(dataset, k=K, tiles=tiles, metrics=metrics)
        assert session.start(region).tile_seeded

        other = _make_dataset(31, n=len(dataset))
        session.swap_dataset(other)
        assert metrics.count("tiles.swap_detached") == 1

        step = session.start(region)
        assert not step.tile_seeded
        assert metrics.count("tiles.skipped.fingerprint") >= 1
        _assert_steps_equal(step, MapSession(other, k=K).start(region))

    def test_shared_store_survives_one_sessions_swap(
        self, dataset, store, region
    ):
        # Two sessions share one cache; one swaps datasets.  The other
        # must keep serving from the shared store unaffected.
        tiles = TileSelectionCache(store, min_candidates=0)
        first = MapSession(dataset, k=K, tiles=tiles)
        second = MapSession(dataset, k=K, tiles=tiles)
        assert first.start(region).tile_seeded
        assert second.start(region).tile_seeded

        first.swap_dataset(_make_dataset(32, n=len(dataset)))
        assert not first.start(region).tile_seeded

        other_region = BoundingBox(0.5, 0.5, 0.75, 0.75)
        step = second.zoom_in(0.9)
        assert step.tile_seeded
        _assert_steps_equal(
            step,
            (lambda s: (s.start(region), s.zoom_in(0.9))[1])(
                MapSession(dataset, k=K)
            ),
        )
        assert second.start(other_region).tile_seeded


class TestEviction:
    def test_byte_budget_enforced_lru_by_hits(self, dataset):
        scheme = TileScheme(frame=dataset.frame(), max_zoom=2)
        tiles = [
            build_tile(dataset, scheme, key, ids, k=K)
            for key, ids in bin_ids_per_tile(dataset, scheme, 2).items()
        ]
        budget = sum(t.nbytes for t in tiles[:4]) + 1
        store = TileStore(
            scheme=scheme,
            meta=StoreMeta(
                fingerprint=dataset_fingerprint(dataset),
                objects=len(dataset),
                k=K,
                theta_fraction=0.02,
                frame=dataset.frame(),
                max_zoom=2,
            ),
            byte_budget=budget,
        )
        for tile in tiles[:4]:
            assert store.put(tile) == []
        assert store.total_bytes <= budget
        # Touch the first tile so it is the most recently used.
        assert store.get(tiles[0].key) is not None
        evicted = store.put(tiles[4])
        assert evicted
        assert tiles[0].key not in evicted
        assert store.total_bytes <= budget
        assert store.evictions == len(evicted)

    def test_oversized_budget_never_evicts(self, dataset, store):
        assert store.byte_budget is None
        assert store.evictions == 0


class TestRefinement:
    def test_missed_tiles_get_built_then_served(self, dataset, region):
        scheme = TileScheme(frame=dataset.frame(), max_zoom=3)
        # Build only the coarse levels: deep viewports miss, refine
        # fills the gap online.
        store = build_tile_store(dataset, scheme=scheme, zooms=[0, 1])
        metrics = MetricsRegistry()
        tiles = TileSelectionCache(store, min_candidates=0, metrics=metrics)
        small = BoundingBox(0.3, 0.3, 0.41, 0.41)  # resolves to zoom 3
        assert tiles.bounds_for(
            dataset,
            small,
            dataset.objects_in(small),
            dataset.objects_in(small),
        ) is None
        assert metrics.count("tiles.lookup.misses") >= 1

        built = tiles.refine(dataset, limit=8)
        assert built
        assert all(key in store for key in built)
        bounds = tiles.bounds_for(
            dataset,
            small,
            dataset.objects_in(small),
            dataset.objects_in(small),
        )
        assert bounds is not None

    def test_refine_promotes_hot_children(self, dataset, region):
        scheme = TileScheme(frame=dataset.frame(), max_zoom=2)
        store = build_tile_store(dataset, scheme=scheme, zooms=[1])
        tiles = TileSelectionCache(store, min_candidates=0)
        # Generate traffic so a level-1 tile becomes hot.
        for _ in range(3):
            tiles.bounds_for(
                dataset,
                region,
                dataset.objects_in(region),
                dataset.objects_in(region),
            )
        before = set(store.keys())
        built = tiles.refine(dataset, limit=4)
        assert built
        assert all(key.zoom == 2 for key in built)
        assert set(store.keys()) - before == set(built)

    def test_refine_noop_against_swapped_dataset(self, dataset, store):
        tiles = TileSelectionCache(store, min_candidates=0)
        other = _make_dataset(33, n=len(dataset))
        assert tiles.refine(other, limit=4) == []

    def test_session_refines_off_path(self, dataset, region):
        scheme = TileScheme(frame=dataset.frame(), max_zoom=3)
        store = build_tile_store(dataset, scheme=scheme, zooms=[0])
        tiles = TileSelectionCache(store, min_candidates=0)
        session = MapSession(dataset, k=K, tiles=tiles)
        small = BoundingBox(0.3, 0.3, 0.41, 0.41)
        step = session.start(small)  # misses; _commit refines after
        assert not step.tile_seeded
        assert len(store) > 1  # refinement built missed tiles


class TestPersistence:
    def test_save_load_roundtrip(self, dataset, store, region, tmp_path):
        path = tmp_path / "tiles.npz"
        store.save(path)
        loaded = TileStore.load(path)
        assert loaded.meta.to_json() == store.meta.to_json()
        assert set(loaded.keys()) == set(store.keys())
        for key in store.keys():
            a = store.get(key, touch=False)
            b = loaded.get(key, touch=False)
            np.testing.assert_array_equal(a.ids, b.ids)
            np.testing.assert_array_equal(a.source_keys, b.source_keys)
            np.testing.assert_array_equal(a.source_masses, b.source_masses)
            np.testing.assert_array_equal(a.selection, b.selection)

        tiled = MapSession(
            dataset, k=K, tiles=TileSelectionCache(loaded, min_candidates=0)
        )
        cold = MapSession(dataset, k=K)
        a, b = tiled.start(region), cold.start(region)
        assert a.tile_seeded
        _assert_steps_equal(a, b)
