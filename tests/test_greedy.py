"""Tests for the greedy SOS solver (Algorithm 1).

Covers the visibility constraint, equivalence of lazy / naive / bulk
variants, the Lemma 4.3 geometry, and the empirical 1/8 approximation
guarantee against the exact solver.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    Aggregation,
    GeoDataset,
    RegionQuery,
    exact_select,
    greedy_select,
    representative_score,
)
from repro.geo import BoundingBox
from repro.geo.distance import pairwise_min_distance
from repro.similarity import MatrixSimilarity


def small_dataset(n: int, seed: int, weights=True) -> GeoDataset:
    gen = np.random.default_rng(seed)
    return GeoDataset.build(
        gen.random(n), gen.random(n),
        weights=gen.random(n) if weights else None,
        similarity=MatrixSimilarity.random(n, gen),
    )


class TestBasicBehaviour:
    def test_selects_k(self, uniform_dataset, center_query):
        result = greedy_select(uniform_dataset, center_query)
        assert len(result) == center_query.k

    def test_selection_inside_region(self, uniform_dataset, center_query):
        result = greedy_select(uniform_dataset, center_query)
        for obj in result.selected:
            assert center_query.region.contains_point(
                float(uniform_dataset.xs[obj]), float(uniform_dataset.ys[obj])
            )

    def test_visibility_constraint(self, uniform_dataset, center_query):
        result = greedy_select(uniform_dataset, center_query)
        sel = result.selected
        dmin = pairwise_min_distance(
            uniform_dataset.xs[sel], uniform_dataset.ys[sel]
        )
        assert dmin >= center_query.theta

    def test_no_duplicates(self, uniform_dataset, center_query):
        result = greedy_select(uniform_dataset, center_query)
        assert len(set(result.selected.tolist())) == len(result)

    def test_score_matches_reported(self, uniform_dataset, center_query):
        result = greedy_select(uniform_dataset, center_query)
        want = representative_score(
            uniform_dataset, result.region_ids, result.selected
        )
        assert result.score == pytest.approx(want)

    def test_empty_region(self, uniform_dataset):
        query = RegionQuery(
            region=BoundingBox(2.0, 2.0, 3.0, 3.0), k=5, theta=0.01
        )
        result = greedy_select(uniform_dataset, query)
        assert len(result) == 0
        assert result.score == 0.0

    def test_k_larger_than_population(self, uniform_dataset):
        query = RegionQuery(
            region=BoundingBox(0.0, 0.0, 0.08, 0.08), k=500, theta=0.0
        )
        result = greedy_select(uniform_dataset, query)
        assert len(result) == len(result.region_ids)

    def test_theta_caps_selection_size(self):
        # Points 0.1 apart; theta 0.25 admits only every third point.
        xs = np.arange(10) * 0.1
        ys = np.zeros(10)
        ds = GeoDataset.build(xs, ys)
        query = RegionQuery(region=BoundingBox(-1, -1, 2, 2), k=10, theta=0.25)
        result = greedy_select(ds, query)
        assert len(result) < 10
        sel = result.selected
        assert pairwise_min_distance(ds.xs[sel], ds.ys[sel]) >= 0.25

    def test_first_pick_maximizes_initial_gain(self):
        ds = small_dataset(15, seed=4)
        ids = np.arange(15)
        query = RegionQuery(region=BoundingBox(-1, -1, 2, 2), k=1, theta=0.0)
        result = greedy_select(ds, query)
        masses = [
            float(np.dot(ds.weights, ds.similarity.sims_to(i, ids))) / 15
            for i in range(15)
        ]
        assert result.score == pytest.approx(max(masses))

    def test_stats_recorded(self, uniform_dataset, center_query):
        result = greedy_select(uniform_dataset, center_query)
        assert result.stats["gain_evaluations"] > 0
        assert result.stats["population"] == len(result.region_ids)
        assert result.stats["elapsed_s"] >= 0.0


class TestVariantEquivalence:
    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 5000))
    def test_lazy_equals_naive(self, seed):
        ds = small_dataset(40, seed)
        query = RegionQuery(
            region=BoundingBox(0.0, 0.0, 1.0, 1.0), k=8, theta=0.05
        )
        lazy = greedy_select(ds, query, lazy=True)
        naive = greedy_select(ds, query, lazy=False)
        assert lazy.selected.tolist() == naive.selected.tolist()
        assert lazy.score == pytest.approx(naive.score)

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 5000))
    def test_bulk_init_equals_exact_init(self, seed):
        ds = small_dataset(40, seed)
        query = RegionQuery(
            region=BoundingBox(0.0, 0.0, 1.0, 1.0), k=8, theta=0.05
        )
        exact = greedy_select(ds, query, init_mode="exact")
        bulk = greedy_select(ds, query, init_mode="bulk")
        assert exact.selected.tolist() == bulk.selected.tolist()

    def test_lazy_saves_evaluations(self):
        ds = small_dataset(120, seed=9)
        query = RegionQuery(
            region=BoundingBox(0.0, 0.0, 1.0, 1.0), k=15, theta=0.02
        )
        lazy = greedy_select(ds, query, lazy=True)
        naive = greedy_select(ds, query, lazy=False)
        assert lazy.stats["gain_evaluations"] < naive.stats["gain_evaluations"]

    def test_invalid_init_mode(self, uniform_dataset, center_query):
        with pytest.raises(ValueError, match="init_mode"):
            greedy_select(uniform_dataset, center_query, init_mode="nope")


class TestSumAggregation:
    def test_selects_k_and_visibility(self, uniform_dataset, center_query):
        result = greedy_select(
            uniform_dataset, center_query, aggregation=Aggregation.SUM
        )
        assert len(result) == center_query.k
        sel = result.selected
        assert pairwise_min_distance(
            uniform_dataset.xs[sel], uniform_dataset.ys[sel]
        ) >= center_query.theta

    def test_score_is_sum_score(self, uniform_dataset, center_query):
        result = greedy_select(
            uniform_dataset, center_query, aggregation=Aggregation.SUM
        )
        want = representative_score(
            uniform_dataset, result.region_ids, result.selected,
            Aggregation.SUM,
        )
        assert result.score == pytest.approx(want)


class TestApproximationGuarantee:
    """Theorem 4.4: greedy >= OPT / 8 (we usually see much better)."""

    @settings(max_examples=12, deadline=None)
    @given(seed=st.integers(0, 3000))
    def test_ratio_against_exact(self, seed):
        gen = np.random.default_rng(seed)
        n = 12
        ds = GeoDataset.build(
            gen.random(n), gen.random(n),
            weights=gen.random(n),
            similarity=MatrixSimilarity.random(n, gen),
        )
        query = RegionQuery(
            region=BoundingBox(-0.1, -0.1, 1.1, 1.1), k=4,
            theta=float(gen.uniform(0.0, 0.3)),
        )
        opt = exact_select(ds, query)
        grd = greedy_select(ds, query)
        assert grd.score >= opt.score / 8.0 - 1e-12
        # Sanity: exact is at least as good as greedy.
        assert opt.score >= grd.score - 1e-12
