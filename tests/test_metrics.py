"""Tests for the repro.metrics counter/timer registry."""

from __future__ import annotations

import numpy as np
import pytest

from repro.metrics import MetricsRegistry, percentile


class TestPercentile:
    def test_matches_numpy_default_method(self):
        rng = np.random.default_rng(5)
        samples = rng.random(37).tolist()
        for q in (0.0, 12.5, 50.0, 90.0, 95.0, 100.0):
            assert percentile(samples, q) == pytest.approx(
                float(np.percentile(samples, q))
            )

    def test_single_sample(self):
        assert percentile([3.5], 95.0) == 3.5

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            percentile([], 50.0)

    def test_bad_q_rejected(self):
        with pytest.raises(ValueError):
            percentile([1.0], 101.0)
        with pytest.raises(ValueError):
            percentile([1.0], -1.0)


class TestCounters:
    def test_incr_and_count(self):
        m = MetricsRegistry()
        assert m.count("x") == 0.0
        m.incr("x")
        m.incr("x", 4)
        assert m.count("x") == 5.0

    def test_snapshot_and_delta(self):
        m = MetricsRegistry()
        m.incr("a", 2)
        before = m.snapshot()
        m.incr("a", 3)
        m.incr("b")
        m.incr("c", 0)  # created but unmoved: omitted from the delta
        delta = m.delta_since(before)
        assert delta == {"a": 3.0, "b": 1.0}

    def test_snapshot_is_a_copy(self):
        m = MetricsRegistry()
        m.incr("a")
        snap = m.snapshot()
        m.incr("a")
        assert snap["a"] == 1.0

    def test_reset(self):
        m = MetricsRegistry()
        m.incr("a")
        m.observe("t", 0.5)
        m.reset()
        assert m.count("a") == 0.0
        assert m.observations("t") == []


class TestObservations:
    def test_observe_and_summary(self):
        m = MetricsRegistry()
        for v in (0.1, 0.2, 0.3, 0.4):
            m.observe("lat", v)
        s = m.summary("lat")
        assert s["count"] == 4
        assert s["mean"] == pytest.approx(0.25)
        assert s["p50"] == pytest.approx(0.25)
        assert s["max"] == pytest.approx(0.4)

    def test_empty_summary(self):
        assert MetricsRegistry().summary("nothing") == {"count": 0}

    def test_time_context_manager(self):
        m = MetricsRegistry()
        with m.time("block"):
            pass
        obs = m.observations("block")
        assert len(obs) == 1
        assert obs[0] >= 0.0

    def test_time_records_on_exception(self):
        m = MetricsRegistry()
        with pytest.raises(RuntimeError):
            with m.time("block"):
                raise RuntimeError("boom")
        assert len(m.observations("block")) == 1

    def test_observations_returns_copy(self):
        m = MetricsRegistry()
        m.observe("t", 1.0)
        m.observations("t").append(99.0)
        assert m.observations("t") == [1.0]


class TestFormat:
    def test_empty(self):
        assert MetricsRegistry().format() == "(no metrics recorded)"

    def test_counters_and_timers_rendered(self):
        m = MetricsRegistry()
        m.incr("sim.row_hits", 12)
        m.observe("session.op_seconds", 0.05)
        text = m.format()
        assert "sim.row_hits" in text
        assert "12" in text
        assert "session.op_seconds" in text
        assert "p95=" in text
