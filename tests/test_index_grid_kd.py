"""Grid- and KD-tree-specific tests beyond the shared contract."""

import numpy as np
import pytest

from repro.geo import BoundingBox
from repro.index import GridIndex, KDTreeIndex, LinearIndex, build_index


class TestGridIndex:
    def test_cells_validation(self):
        with pytest.raises(ValueError):
            GridIndex(np.array([0.0]), np.array([0.0]), cells=0)

    def test_explicit_cells(self):
        gen = np.random.default_rng(0)
        xs, ys = gen.random(200), gen.random(200)
        for cells in (1, 2, 7, 50):
            grid = GridIndex(xs, ys, cells=cells)
            truth = LinearIndex(xs, ys)
            box = BoundingBox(0.3, 0.1, 0.8, 0.55)
            assert grid.query_region(box).tolist() == (
                truth.query_region(box).tolist()
            )

    def test_identical_points_one_cell(self):
        xs = np.full(100, 0.5)
        ys = np.full(100, 0.5)
        grid = GridIndex(xs, ys)
        out = grid.query_region(BoundingBox(0.4, 0.4, 0.6, 0.6))
        assert out.tolist() == list(range(100))

    def test_query_outside_frame(self):
        gen = np.random.default_rng(1)
        grid = GridIndex(gen.random(50), gen.random(50))
        assert len(grid.query_region(BoundingBox(5.0, 5.0, 6.0, 6.0))) == 0

    def test_default_resolution_scales(self):
        gen = np.random.default_rng(2)
        small = GridIndex(gen.random(100), gen.random(100))
        large = GridIndex(gen.random(100_000), gen.random(100_000))
        assert large.cells > small.cells


class TestGridInteriorClassification:
    """The interior-cell shortcut vs. brute force on adversarial input.

    The regression: interior cells used to be decided by recomputing
    the cell geometry as ``1.0 / inv_cell_width`` and comparing floats,
    which can drift from the binning arithmetic that actually assigned
    the points — a cell whose edge coincides with the query edge could
    be taken wholesale while one of its points sits just outside the
    box.  Interior is now derived from the same binning (strictly
    between the edge bins), which is conservative and provably exact.
    """

    def _assert_matches_brute_force(self, xs, ys, box, cells):
        grid = GridIndex(xs, ys, cells=cells)
        got = sorted(grid.query_region(box).tolist())
        mask = box.contains_many(xs, ys)
        want = sorted(np.flatnonzero(mask).tolist())
        assert got == want

    def test_boundary_aligned_points_and_boxes(self):
        """Points and query edges sitting exactly on cell boundaries."""
        for cells in (1, 2, 4, 8, 16):
            # Lattice of points on the cell corners of a [0,1] frame.
            edges = np.linspace(0.0, 1.0, cells + 1)
            gx, gy = np.meshgrid(edges, edges)
            xs, ys = gx.ravel(), gy.ravel()
            for lo, hi in [(0.0, 1.0), (edges[0], edges[-1])] + (
                [(edges[1], edges[-2])] if cells >= 3 else []
            ):
                self._assert_matches_brute_force(
                    xs, ys, BoundingBox(lo, lo, hi, hi), cells
                )

    def test_box_edges_on_irrational_cell_widths(self):
        """Frames whose cell width has no exact float representation."""
        gen = np.random.default_rng(5)
        n = 400
        xs = gen.random(n) * (1.0 / 3.0)
        ys = gen.random(n) * (1.0 / 7.0)
        for cells in (3, 7, 13):
            grid = GridIndex(xs, ys, cells=cells)
            # Query edges on the *derived* cell boundaries, where the
            # old 1/inv round-trip could disagree with binning.
            inv_w = grid._inv_cw
            inv_h = grid._inv_ch
            for c in range(1, cells):
                box = BoundingBox(
                    grid._frame.minx + c / inv_w,
                    grid._frame.miny + c / inv_h,
                    grid._frame.minx + (c + 1.0) / inv_w,
                    grid._frame.miny + (c + 2.0) / inv_h,
                )
                self._assert_matches_brute_force(xs, ys, box, cells)

    def test_property_random_points_random_boxes(self):
        """Randomized sweep: grid == brute force for every box."""
        gen = np.random.default_rng(11)
        n = 500
        # Half random, half snapped onto a coarse lattice so many
        # points share exact boundary coordinates.
        xs = np.concatenate(
            [gen.random(n // 2), np.round(gen.random(n // 2) * 8) / 8]
        )
        ys = np.concatenate(
            [gen.random(n // 2), np.round(gen.random(n // 2) * 8) / 8]
        )
        for trial in range(60):
            cells = int(gen.integers(1, 20))
            corners = gen.random(4)
            if trial % 3 == 0:  # snap box corners onto the lattice too
                corners = np.round(corners * 8) / 8
            x0, x1 = sorted(corners[:2])
            y0, y1 = sorted(corners[2:])
            self._assert_matches_brute_force(
                xs, ys, BoundingBox(x0, y0, x1, y1), cells
            )


class TestKDTreeIndex:
    def test_leaf_size_validation(self):
        with pytest.raises(ValueError):
            KDTreeIndex(np.array([0.0]), np.array([0.0]), leaf_size=0)

    def test_small_leaf_size(self):
        gen = np.random.default_rng(3)
        xs, ys = gen.random(300), gen.random(300)
        tree = KDTreeIndex(xs, ys, leaf_size=1)
        truth = LinearIndex(xs, ys)
        box = BoundingBox(0.25, 0.25, 0.75, 0.6)
        assert tree.query_region(box).tolist() == truth.query_region(box).tolist()

    def test_identical_points_terminate(self):
        # All-identical coordinates must not recurse forever.
        xs = np.full(500, 0.3)
        ys = np.full(500, 0.7)
        tree = KDTreeIndex(xs, ys, leaf_size=4)
        out = tree.query_region(BoundingBox(0.0, 0.0, 1.0, 1.0))
        assert out.tolist() == list(range(500))

    def test_nearest_best_first_prunes_correctly(self):
        gen = np.random.default_rng(4)
        xs, ys = gen.random(1000), gen.random(1000)
        tree = KDTreeIndex(xs, ys, leaf_size=8)
        for seed in range(5):
            g2 = np.random.default_rng(seed)
            x, y = g2.random(2)
            got = tree.nearest(x, y, 5)
            d_got = np.sort(np.hypot(xs[got] - x, ys[got] - y))
            d_all = np.sort(np.hypot(xs - x, ys - y))
            assert d_got == pytest.approx(d_all[:5])


class TestBuildIndexFactory:
    def test_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown index kind"):
            build_index("voronoi", np.array([0.0]), np.array([0.0]))

    def test_kwargs_forwarded(self):
        grid = build_index("grid", np.array([0.1]), np.array([0.2]), cells=3)
        assert grid.cells == 3

    def test_mismatched_arrays_rejected(self):
        with pytest.raises(ValueError):
            build_index("linear", np.array([0.0, 1.0]), np.array([0.0]))
