"""Tests for the representative score (Eq. 1–2) and marginal-gain state.

Includes the property-based verification of the two lemmas the greedy
guarantee rests on: monotonicity (Lemma 4.2) and submodularity
(Lemma 4.1) of ``Sim(O, ·)``.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Aggregation, GeoDataset, representative_score, similarity_to_set
from repro.core.scoring import MarginalGainState
from repro.similarity import MatrixSimilarity


def dataset_from_matrix(matrix: np.ndarray, weights=None) -> GeoDataset:
    n = matrix.shape[0]
    gen = np.random.default_rng(0)
    return GeoDataset.build(
        gen.random(n), gen.random(n),
        weights=weights,
        similarity=MatrixSimilarity(matrix),
    )


@pytest.fixture
def tiny_dataset():
    # Hand-checkable 4-object similarity structure.
    m = np.array(
        [
            [1.0, 0.8, 0.1, 0.0],
            [0.8, 1.0, 0.2, 0.0],
            [0.1, 0.2, 1.0, 0.5],
            [0.0, 0.0, 0.5, 1.0],
        ]
    )
    return dataset_from_matrix(m)


class TestSimilarityToSet:
    def test_empty_selection(self, tiny_dataset):
        assert similarity_to_set(tiny_dataset, 0, np.array([])) == 0.0

    def test_max_aggregation(self, tiny_dataset):
        assert similarity_to_set(
            tiny_dataset, 0, np.array([2, 3])
        ) == pytest.approx(0.1)
        assert similarity_to_set(
            tiny_dataset, 0, np.array([1, 2])
        ) == pytest.approx(0.8)

    def test_sum_aggregation(self, tiny_dataset):
        got = similarity_to_set(
            tiny_dataset, 0, np.array([1, 2]), Aggregation.SUM
        )
        assert got == pytest.approx(0.9)

    def test_avg_aggregation(self, tiny_dataset):
        got = similarity_to_set(
            tiny_dataset, 0, np.array([1, 2]), Aggregation.AVG
        )
        assert got == pytest.approx(0.45)

    def test_self_in_selection_gives_one(self, tiny_dataset):
        assert similarity_to_set(tiny_dataset, 2, np.array([2])) == 1.0


class TestRepresentativeScore:
    def test_empty_cases(self, tiny_dataset):
        ids = np.arange(4)
        assert representative_score(tiny_dataset, ids, np.array([])) == 0.0
        assert representative_score(tiny_dataset, np.array([]), ids) == 0.0

    def test_hand_computed(self, tiny_dataset):
        # S = {0}: Sim(o,S) = [1.0, 0.8, 0.1, 0.0], unit weights.
        ids = np.arange(4)
        got = representative_score(tiny_dataset, ids, np.array([0]))
        assert got == pytest.approx((1.0 + 0.8 + 0.1 + 0.0) / 4.0)

    def test_full_selection_scores_weight_mean(self, tiny_dataset):
        # Every object represents itself at similarity 1.
        ids = np.arange(4)
        got = representative_score(tiny_dataset, ids, ids)
        assert got == pytest.approx(1.0)

    def test_weights_scale_contributions(self):
        m = np.eye(2)
        ds = dataset_from_matrix(m, weights=np.array([1.0, 0.0]))
        ids = np.arange(2)
        # S = {0}: object 0 contributes 1*1, object 1 contributes 0*0.
        assert representative_score(ds, ids, np.array([0])) == pytest.approx(0.5)
        # S = {1}: object 1's weight is 0, object 0 has sim 0.
        assert representative_score(ds, ids, np.array([1])) == pytest.approx(0.0)

    def test_sum_vs_max(self, tiny_dataset):
        ids = np.arange(4)
        selected = np.array([0, 1])
        s_max = representative_score(tiny_dataset, ids, selected, Aggregation.MAX)
        s_sum = representative_score(tiny_dataset, ids, selected, Aggregation.SUM)
        s_avg = representative_score(tiny_dataset, ids, selected, Aggregation.AVG)
        assert s_sum >= s_max >= s_avg - 1e-12
        assert s_avg == pytest.approx(s_sum / 2.0)


class TestLemmaProperties:
    """Lemmas 4.1 (submodularity) and 4.2 (monotonicity), empirically."""

    @settings(max_examples=40, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_monotone(self, seed):
        gen = np.random.default_rng(seed)
        n = 12
        ds = dataset_from_matrix(
            MatrixSimilarity.random(n, gen).matrix, weights=gen.random(n)
        )
        ids = np.arange(n)
        subset = gen.choice(n, size=4, replace=False)
        superset = np.union1d(subset, gen.choice(n, size=3, replace=False))
        assert representative_score(ds, ids, subset) <= (
            representative_score(ds, ids, superset) + 1e-12
        )

    @settings(max_examples=40, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_submodular(self, seed):
        gen = np.random.default_rng(seed)
        n = 12
        ds = dataset_from_matrix(
            MatrixSimilarity.random(n, gen).matrix, weights=gen.random(n)
        )
        ids = np.arange(n)
        small = gen.choice(n, size=3, replace=False)
        extra = gen.choice(np.setdiff1d(ids, small), size=3, replace=False)
        big = np.union1d(small, extra)
        v = int(gen.choice(np.setdiff1d(ids, big)))

        def score(sel):
            return representative_score(ds, ids, np.asarray(sel))

        gain_small = score(np.append(small, v)) - score(small)
        gain_big = score(np.append(big, v)) - score(big)
        assert gain_small >= gain_big - 1e-12


class TestMarginalGainState:
    def test_rejects_avg(self, tiny_dataset):
        with pytest.raises(ValueError, match="AVG"):
            MarginalGainState(tiny_dataset, np.arange(4), Aggregation.AVG)

    def test_gain_matches_score_delta(self, tiny_dataset):
        ids = np.arange(4)
        state = MarginalGainState(tiny_dataset, ids)
        for pick in (0, 3, 1):
            expected = state.gain(pick)
            before = state.score
            realized = state.add(pick)
            assert realized == pytest.approx(expected)
            assert state.score == pytest.approx(before + expected)

    def test_score_matches_representative_score(self, tiny_dataset):
        ids = np.arange(4)
        state = MarginalGainState(tiny_dataset, ids)
        state.add(0)
        state.add(3)
        want = representative_score(tiny_dataset, ids, np.array([0, 3]))
        assert state.score == pytest.approx(want)

    def test_sum_gain_is_selection_independent(self, tiny_dataset):
        ids = np.arange(4)
        state = MarginalGainState(tiny_dataset, ids, Aggregation.SUM)
        g_before = state.gain(2)
        state.add(0)
        state.add(1)
        assert state.gain(2) == pytest.approx(g_before)

    def test_empty_population(self, tiny_dataset):
        state = MarginalGainState(tiny_dataset, np.array([], dtype=np.int64))
        assert state.gain(0) == 0.0
        assert state.add(0) == 0.0
        assert state.score == 0.0

    def test_gain_evaluations_counted(self, tiny_dataset):
        state = MarginalGainState(tiny_dataset, np.arange(4))
        assert state.gain_evaluations == 0
        state.gain(0)
        state.gain(1)
        assert state.gain_evaluations == 2

    def test_readding_same_object_gains_nothing(self, tiny_dataset):
        state = MarginalGainState(tiny_dataset, np.arange(4))
        state.add(2)
        assert state.gain(2) == pytest.approx(0.0)
        assert state.add(2) == pytest.approx(0.0)
