"""Tests for the baseline selectors."""

import numpy as np
import pytest

from repro import RegionQuery, greedy_select, representative_score
from repro.baselines import (
    SELECTOR_REGISTRY,
    disc_select,
    kmeans_select,
    maxmin_select,
    maxsum_select,
    random_select,
    topweight_select,
)
from repro.geo import BoundingBox
from repro.geo.distance import pairwise_min_distance

ALL_BASELINES = sorted(SELECTOR_REGISTRY)


@pytest.fixture(params=ALL_BASELINES)
def baseline(request):
    return SELECTOR_REGISTRY[request.param]


class TestCommonContract:
    def test_at_most_k_selected(self, baseline, uniform_dataset, center_query):
        result = baseline(
            uniform_dataset, center_query, rng=np.random.default_rng(0)
        )
        assert 0 < len(result) <= max(
            center_query.k, int(center_query.k * 1.2)
        )  # DisC may overshoot slightly by design

    def test_selection_inside_region(self, baseline, uniform_dataset,
                                     center_query):
        result = baseline(
            uniform_dataset, center_query, rng=np.random.default_rng(1)
        )
        for obj in result.selected:
            assert center_query.region.contains_point(
                float(uniform_dataset.xs[obj]),
                float(uniform_dataset.ys[obj]),
            )

    def test_no_duplicates(self, baseline, uniform_dataset, center_query):
        result = baseline(
            uniform_dataset, center_query, rng=np.random.default_rng(2)
        )
        assert len(set(result.selected.tolist())) == len(result)

    def test_score_is_full_population_score(
        self, baseline, uniform_dataset, center_query
    ):
        result = baseline(
            uniform_dataset, center_query, rng=np.random.default_rng(3)
        )
        want = representative_score(
            uniform_dataset, result.region_ids, result.selected
        )
        assert result.score == pytest.approx(want)

    def test_empty_region(self, baseline, uniform_dataset):
        query = RegionQuery(
            region=BoundingBox(5.0, 5.0, 6.0, 6.0), k=5, theta=0.01
        )
        result = baseline(uniform_dataset, query, rng=np.random.default_rng(4))
        assert len(result) == 0

    def test_deterministic_under_rng(self, baseline, uniform_dataset,
                                     center_query):
        a = baseline(uniform_dataset, center_query,
                     rng=np.random.default_rng(42))
        b = baseline(uniform_dataset, center_query,
                     rng=np.random.default_rng(42))
        assert a.selected.tolist() == b.selected.tolist()


class TestVisibilityEnforcement:
    """Random and TopWeight enforce θ; the diversity/cluster baselines
    are exempt per the paper."""

    @pytest.mark.parametrize("selector", [random_select, topweight_select])
    def test_enforcing_selectors(self, selector, uniform_dataset,
                                 center_query):
        result = selector(
            uniform_dataset, center_query, rng=np.random.default_rng(5)
        )
        sel = result.selected
        assert pairwise_min_distance(
            uniform_dataset.xs[sel], uniform_dataset.ys[sel]
        ) >= center_query.theta


class TestRandom:
    def test_fewer_when_theta_binds(self, uniform_dataset):
        query = RegionQuery(
            region=BoundingBox(0.0, 0.0, 1.0, 1.0), k=600, theta=0.2
        )
        result = random_select(
            uniform_dataset, query, rng=np.random.default_rng(6)
        )
        assert len(result) < 600

    def test_different_rngs_differ(self, uniform_dataset, center_query):
        a = random_select(uniform_dataset, center_query,
                          rng=np.random.default_rng(1))
        b = random_select(uniform_dataset, center_query,
                          rng=np.random.default_rng(2))
        assert a.selected.tolist() != b.selected.tolist()


class TestTopWeight:
    def test_prefers_heavy_objects(self):
        from repro import GeoDataset

        gen = np.random.default_rng(7)
        xs, ys = gen.random(100), gen.random(100)
        weights = np.linspace(0.0, 1.0, 100)
        ds = GeoDataset.build(xs, ys, weights=weights)
        query = RegionQuery(
            region=BoundingBox(0.0, 0.0, 1.0, 1.0), k=10, theta=0.0
        )
        result = topweight_select(ds, query)
        # With no visibility pressure, picks are exactly the top-10.
        assert sorted(result.selected.tolist()) == list(range(90, 100))


class TestDiversityBaselines:
    def test_maxmin_spreads_points(self, uniform_dataset, center_query):
        result = maxmin_select(
            uniform_dataset, center_query, rng=np.random.default_rng(8)
        )
        sel = result.selected
        spread = pairwise_min_distance(
            uniform_dataset.xs[sel], uniform_dataset.ys[sel]
        )
        rnd = random_select(
            uniform_dataset, center_query, rng=np.random.default_rng(8)
        )
        rnd_spread = pairwise_min_distance(
            uniform_dataset.xs[rnd.selected], uniform_dataset.ys[rnd.selected]
        )
        # MaxMin maximizes the minimum separation (with Euclidean
        # similarity, dissimilarity == normalized distance).
        assert spread > rnd_spread

    def test_maxsum_runs_and_scores(self, uniform_dataset, center_query):
        result = maxsum_select(
            uniform_dataset, center_query, rng=np.random.default_rng(9)
        )
        assert len(result) == center_query.k
        assert 0.0 <= result.score <= 1.0

    def test_single_object_region(self):
        from repro import GeoDataset

        ds = GeoDataset.build(np.array([0.5]), np.array([0.5]))
        query = RegionQuery(
            region=BoundingBox(0.0, 0.0, 1.0, 1.0), k=3, theta=0.0
        )
        for selector in (maxmin_select, maxsum_select):
            result = selector(ds, query, rng=np.random.default_rng(0))
            assert result.selected.tolist() == [0]


class TestDisC:
    def test_output_size_near_k(self, uniform_dataset, center_query):
        result = disc_select(
            uniform_dataset, center_query, rng=np.random.default_rng(10)
        )
        assert abs(len(result) - center_query.k) <= max(
            2, int(0.25 * center_query.k)
        )

    def test_radius_gap_stat(self, uniform_dataset, center_query):
        result = disc_select(
            uniform_dataset, center_query, rng=np.random.default_rng(11)
        )
        assert result.stats["radius_gap"] == abs(
            len(result) - center_query.k
        )


class TestKMeans:
    def test_one_pick_per_cluster(self, uniform_dataset, center_query):
        result = kmeans_select(
            uniform_dataset, center_query, rng=np.random.default_rng(12)
        )
        assert 1 <= len(result) <= center_query.k

    def test_separated_clusters_found(self):
        from repro import GeoDataset

        gen = np.random.default_rng(13)
        centers = np.array([[0.2, 0.2], [0.8, 0.2], [0.5, 0.8]])
        pts = np.concatenate(
            [c + gen.normal(0, 0.02, (50, 2)) for c in centers]
        )
        ds = GeoDataset.build(pts[:, 0], pts[:, 1])
        query = RegionQuery(
            region=BoundingBox(-1, -1, 2, 2), k=3, theta=0.0
        )
        result = kmeans_select(ds, query, rng=np.random.default_rng(14))
        got = sorted(
            (round(float(ds.xs[i]), 1), round(float(ds.ys[i]), 1))
            for i in result.selected
        )
        assert got == [(0.2, 0.2), (0.5, 0.8), (0.8, 0.2)]


class TestQualityOrdering:
    def test_greedy_beats_baselines_on_score(self, text_dataset):
        """The paper's headline quality result (Fig. 7/8, Table 3)."""
        region = BoundingBox(0.0, 0.0, 1.0, 1.0)
        query = RegionQuery(region=region, k=15, theta=0.0)
        greedy_score = greedy_select(text_dataset, query).score
        for name in ("random", "maxmin", "maxsum", "kmeans"):
            score = SELECTOR_REGISTRY[name](
                text_dataset, query, rng=np.random.default_rng(0)
            ).score
            assert greedy_score >= score - 1e-9, name
