"""Contract tests every spatial index must pass, parametrized by kind.

The :class:`LinearIndex` scan is the ground truth; each index's region,
radius and nearest-neighbour queries must agree with it on random and
adversarial inputs.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geo import BoundingBox
from repro.index import INDEX_CLASSES, LinearIndex, build_index

KINDS = sorted(INDEX_CLASSES)


@pytest.fixture(params=KINDS)
def kind(request):
    return request.param


def random_points(n: int, seed: int) -> tuple[np.ndarray, np.ndarray]:
    gen = np.random.default_rng(seed)
    return gen.random(n), gen.random(n)


class TestRegionQueries:
    def test_empty_index(self, kind):
        index = build_index(kind, np.array([]), np.array([]))
        assert len(index) == 0
        out = index.query_region(BoundingBox.unit())
        assert len(out) == 0

    def test_single_point(self, kind):
        index = build_index(kind, np.array([0.5]), np.array([0.5]))
        assert index.query_region(BoundingBox.unit()).tolist() == [0]
        empty = index.query_region(BoundingBox(0.6, 0.6, 0.9, 0.9))
        assert len(empty) == 0

    def test_whole_frame_returns_everything(self, kind):
        xs, ys = random_points(500, 1)
        index = build_index(kind, xs, ys)
        out = index.query_region(BoundingBox(-1.0, -1.0, 2.0, 2.0))
        assert out.tolist() == list(range(500))

    def test_matches_linear_scan(self, kind):
        xs, ys = random_points(800, 2)
        index = build_index(kind, xs, ys)
        truth = LinearIndex(xs, ys)
        gen = np.random.default_rng(3)
        for _ in range(25):
            x1, x2 = sorted(gen.random(2))
            y1, y2 = sorted(gen.random(2))
            box = BoundingBox(x1, y1, x2, y2)
            assert index.query_region(box).tolist() == (
                truth.query_region(box).tolist()
            )

    def test_boundary_points_included(self, kind):
        xs = np.array([0.0, 0.5, 1.0])
        ys = np.array([0.0, 0.5, 1.0])
        index = build_index(kind, xs, ys)
        out = index.query_region(BoundingBox(0.0, 0.0, 1.0, 1.0))
        assert out.tolist() == [0, 1, 2]

    def test_duplicate_points(self, kind):
        xs = np.array([0.5] * 50 + [0.9])
        ys = np.array([0.5] * 50 + [0.9])
        index = build_index(kind, xs, ys)
        out = index.query_region(BoundingBox(0.4, 0.4, 0.6, 0.6))
        assert out.tolist() == list(range(50))

    def test_collinear_points(self, kind):
        xs = np.linspace(0.0, 1.0, 100)
        ys = np.zeros(100)
        index = build_index(kind, xs, ys)
        out = index.query_region(BoundingBox(0.25, -0.1, 0.5, 0.1))
        truth = LinearIndex(xs, ys).query_region(
            BoundingBox(0.25, -0.1, 0.5, 0.1)
        )
        assert out.tolist() == truth.tolist()

    def test_count_region(self, kind):
        xs, ys = random_points(300, 4)
        index = build_index(kind, xs, ys)
        box = BoundingBox(0.2, 0.2, 0.7, 0.7)
        assert index.count_region(box) == len(index.query_region(box))

    @settings(max_examples=30, deadline=None)
    @pytest.mark.parametrize("index_kind", KINDS)
    @given(seed=st.integers(0, 10_000), n=st.integers(1, 200))
    def test_property_random_against_linear(self, index_kind, seed, n):
        kind = index_kind
        xs, ys = random_points(n, seed)
        index = build_index(kind, xs, ys)
        truth = LinearIndex(xs, ys)
        gen = np.random.default_rng(seed + 1)
        x1, x2 = sorted(gen.random(2))
        y1, y2 = sorted(gen.random(2))
        box = BoundingBox(x1, y1, x2, y2)
        assert index.query_region(box).tolist() == truth.query_region(box).tolist()


class TestRadiusQueries:
    def test_matches_bruteforce(self, kind):
        xs, ys = random_points(400, 5)
        index = build_index(kind, xs, ys)
        gen = np.random.default_rng(6)
        for _ in range(10):
            x, y = gen.random(2)
            r = gen.uniform(0.01, 0.3)
            got = set(index.query_radius(x, y, r).tolist())
            want = {
                i
                for i in range(400)
                if np.hypot(xs[i] - x, ys[i] - y) <= r
            }
            assert got == want

    def test_zero_radius_hits_exact_point(self, kind):
        xs = np.array([0.25, 0.75])
        ys = np.array([0.25, 0.75])
        index = build_index(kind, xs, ys)
        assert index.query_radius(0.25, 0.25, 0.0).tolist() == [0]

    def test_corner_of_square_excluded(self, kind):
        # A point at distance r*sqrt(2) passes the bounding-square
        # prefilter but must be refined away.
        xs = np.array([0.0, 0.1])
        ys = np.array([0.0, 0.1])
        index = build_index(kind, xs, ys)
        out = index.query_radius(0.0, 0.0, 0.12)
        assert out.tolist() == [0]


class TestNearest:
    def test_k_zero(self, kind):
        xs, ys = random_points(50, 7)
        index = build_index(kind, xs, ys)
        assert len(index.nearest(0.5, 0.5, 0)) == 0

    def test_k_exceeds_size(self, kind):
        xs, ys = random_points(5, 8)
        index = build_index(kind, xs, ys)
        out = index.nearest(0.5, 0.5, 50)
        assert sorted(out.tolist()) == list(range(5))

    def test_matches_bruteforce_distances(self, kind):
        xs, ys = random_points(300, 9)
        index = build_index(kind, xs, ys)
        gen = np.random.default_rng(10)
        for _ in range(10):
            x, y = gen.random(2)
            got = index.nearest(x, y, 7)
            got_d = sorted(np.hypot(xs[got] - x, ys[got] - y))
            all_d = sorted(np.hypot(xs - x, ys - y))
            assert got_d == pytest.approx(all_d[:7])

    def test_nearest_of_query_point_itself(self, kind):
        xs = np.array([0.1, 0.5, 0.9])
        ys = np.array([0.1, 0.5, 0.9])
        index = build_index(kind, xs, ys)
        assert index.nearest(0.5, 0.5, 1).tolist() == [1]
