"""Tests for MinHash similarity and LSH near-duplicate detection."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.similarity import (
    JaccardSimilarity,
    MinHashSimilarity,
    compute_signatures,
    near_duplicate_groups,
)


class TestSignatures:
    def test_shape_and_determinism(self):
        sets = [{1, 2, 3}, {2, 3, 4}, {9}]
        a = compute_signatures(sets, num_hashes=32, seed=5)
        b = compute_signatures(sets, num_hashes=32, seed=5)
        assert a.shape == (3, 32)
        assert np.array_equal(a, b)

    def test_different_seed_differs(self):
        sets = [{1, 2, 3}, {2, 3, 4}]
        a = compute_signatures(sets, seed=1)
        b = compute_signatures(sets, seed=2)
        assert not np.array_equal(a, b)

    def test_identical_sets_identical_signatures(self):
        sets = [{5, 6, 7}, {5, 6, 7}]
        sigs = compute_signatures(sets)
        assert np.array_equal(sigs[0], sigs[1])

    def test_empty_set_sentinel(self):
        sigs = compute_signatures([set(), {1}])
        assert (sigs[0] == np.iinfo(np.uint64).max).all()

    def test_num_hashes_validation(self):
        with pytest.raises(ValueError):
            compute_signatures([{1}], num_hashes=0)


class TestMinHashSimilarity:
    def test_protocol_contract(self):
        model = MinHashSimilarity([{1, 2}, {2, 3}, {9, 10}], num_hashes=64)
        ids = np.arange(3)
        for i in range(3):
            sims = model.sims_to(i, ids)
            assert sims[i] == 1.0
            assert np.all(sims >= 0.0) and np.all(sims <= 1.0)
            for j in range(3):
                assert model.sim(i, j) == pytest.approx(model.sim(j, i))

    def test_estimates_jaccard(self):
        """With many hashes the estimate concentrates near the truth."""
        gen = np.random.default_rng(3)
        sets = [
            set(int(x) for x in gen.integers(0, 40, size=20))
            for _ in range(12)
        ]
        exact = JaccardSimilarity(sets)
        approx = MinHashSimilarity(sets, num_hashes=512, seed=1)
        for i in range(12):
            for j in range(i + 1, 12):
                assert approx.sim(i, j) == pytest.approx(
                    exact.sim(i, j), abs=0.12
                )

    def test_disjoint_sets_near_zero(self):
        model = MinHashSimilarity([{1, 2, 3}, {100, 200, 300}],
                                  num_hashes=128)
        assert model.sim(0, 1) < 0.1

    def test_from_texts(self):
        model = MinHashSimilarity.from_texts(
            ["coffee shop downtown", "coffee shop downtown",
             "modern art museum"],
            num_hashes=64,
        )
        assert model.sim(0, 1) == 1.0
        assert model.sim(0, 2) < 0.5

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 1000))
    def test_subset_similarity_positive(self, seed):
        gen = np.random.default_rng(seed)
        base = set(int(x) for x in gen.integers(0, 100, size=30))
        if len(base) < 4:
            return
        subset = set(list(base)[: len(base) // 2])
        model = MinHashSimilarity([base, subset], num_hashes=256)
        assert model.sim(0, 1) > 0.2


class TestNearDuplicateGroups:
    def test_finds_duplicate_groups(self):
        sets = (
            [{1, 2, 3, 4}] * 5        # group A
            + [{50, 51, 52}] * 3      # group B
            + [{i * 7, i * 7 + 1} for i in range(10, 16)]  # singletons
        )
        sigs = compute_signatures(sets, num_hashes=64)
        groups = near_duplicate_groups(sigs, bands=16)
        sizes = sorted(len(g) for g in groups)
        assert sizes[-1] == 5  # group A found whole
        assert 3 in sizes      # group B too
        flat = set()
        for g in groups:
            flat.update(g.tolist())
        assert {0, 1, 2, 3, 4} <= flat

    def test_largest_group_first(self):
        sets = [{1}] * 4 + [{2}] * 2
        groups = near_duplicate_groups(compute_signatures(sets), bands=8)
        assert len(groups[0]) >= len(groups[-1])

    def test_min_group_filters(self):
        sets = [{1}, {1}, {99}]
        groups = near_duplicate_groups(
            compute_signatures(sets), bands=8, min_group=3
        )
        assert groups == []

    def test_bands_validation(self):
        sigs = compute_signatures([{1}], num_hashes=64)
        with pytest.raises(ValueError):
            near_duplicate_groups(sigs, bands=7)  # 64 % 7 != 0

    def test_on_generated_corpus(self):
        """The synthetic generator's duplicate groups are recoverable."""
        from repro.datasets import DatasetSpec, generate_clustered

        ds = generate_clustered(
            DatasetSpec(name="lsh", n=800, n_clusters=3,
                        duplicate_fraction=0.5, seed=4)
        )
        from repro.similarity.minhash import _token_sets

        sets = _token_sets(ds.texts, None)
        groups = near_duplicate_groups(
            compute_signatures(sets, num_hashes=64), bands=16
        )
        # Heavy duplication must surface plenty of multi-member groups.
        assert len(groups) > 20
        # Every group's members share identical text (generator copies
        # texts verbatim), modulo LSH's small false-positive rate.
        exact = 0
        for group in groups[:20]:
            texts = {ds.texts[int(i)] for i in group}
            exact += int(len(texts) == 1)
        assert exact >= 15
