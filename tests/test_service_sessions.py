"""SessionManager: sharing, limits, TTL eviction, concurrent close."""

import asyncio
import threading

import numpy as np
import pytest

from repro import GeoDataset, MetricsRegistry
from repro.geo import BoundingBox
from repro.robustness import (
    ServiceClosed,
    SessionLimitExceeded,
    UnknownSession,
)
from repro.service import SessionManager


def make_dataset(n=500, seed=3):
    gen = np.random.default_rng(seed)
    return GeoDataset.build(
        gen.random(n), gen.random(n), weights=gen.random(n)
    )


def make_manager(**kwargs):
    kwargs.setdefault("session_options", {"k": 5})
    return SessionManager({"a": make_dataset()}, **kwargs)


class TestCreateAndGet:
    def test_create_get_remove(self):
        manager = make_manager()
        entry = manager.create()
        assert entry.session_id == "s-00000001"
        assert manager.get(entry.session_id) is entry
        assert manager.count == 1
        manager.remove(entry.session_id)
        assert manager.count == 0
        with pytest.raises(UnknownSession):
            manager.get(entry.session_id)
        with pytest.raises(UnknownSession):
            manager.remove(entry.session_id)

    def test_sessions_share_the_dataset_object(self):
        manager = make_manager()
        first = manager.create()
        second = manager.create()
        assert first.session is not second.session
        assert first.session.dataset is second.session.dataset

    def test_unknown_dataset_rejected(self):
        manager = make_manager()
        with pytest.raises(ValueError, match="unknown dataset"):
            manager.create("nope")

    def test_override_whitelist(self):
        manager = make_manager()
        entry = manager.create(overrides={"k": 3})
        assert entry.session.k == 3
        with pytest.raises(ValueError, match="unsupported session option"):
            manager.create(overrides={"workers": 4})

    def test_session_limit_is_a_shed(self):
        manager = make_manager(max_sessions=2)
        manager.create()
        manager.create()
        with pytest.raises(SessionLimitExceeded) as exc_info:
            manager.create()
        assert exc_info.value.reason == "session_limit"


class TestTTL:
    def test_eviction_by_fake_clock(self):
        now = [0.0]
        manager = make_manager(ttl_s=10.0, clock=lambda: now[0])
        stale = manager.create()
        now[0] = 5.0
        fresh = manager.create()
        now[0] = 12.0  # stale idle 12s > ttl; fresh idle 7s
        evicted = manager.evict_expired()
        assert evicted == [stale.session_id]
        assert manager.count == 1
        assert stale.session.closed
        with pytest.raises(UnknownSession):
            manager.get(stale.session_id)
        assert manager.get(fresh.session_id) is fresh

    def test_get_refreshes_idle_clock(self):
        now = [0.0]
        manager = make_manager(ttl_s=10.0, clock=lambda: now[0])
        entry = manager.create()
        now[0] = 8.0
        manager.get(entry.session_id)
        now[0] = 15.0  # idle only 7s since the get
        assert manager.evict_expired() == []

    def test_in_flight_sessions_survive_eviction(self):
        async def go():
            now = [0.0]
            manager = make_manager(ttl_s=10.0, clock=lambda: now[0])
            entry = manager.create()
            now[0] = 100.0
            async with entry.lock:  # request in flight
                assert manager.evict_expired() == []
            assert manager.evict_expired() == [entry.session_id]

        asyncio.run(go())

    def test_create_evicts_first(self):
        now = [0.0]
        manager = make_manager(
            ttl_s=10.0, clock=lambda: now[0], max_sessions=1
        )
        manager.create()
        now[0] = 20.0
        # The cap is reached, but the stale session is reclaimable.
        entry = manager.create()
        assert manager.count == 1
        assert manager.get(entry.session_id) is entry

    def test_ttl_disabled(self):
        manager = make_manager(ttl_s=None)
        manager.create()
        assert manager.evict_expired() == []


class TestShutdown:
    def test_close_all_closes_everything_and_refuses_new(self):
        metrics = MetricsRegistry()
        manager = make_manager(metrics=metrics)
        entries = [manager.create() for _ in range(3)]
        manager.close_all()
        assert manager.count == 0
        assert all(e.session.closed for e in entries)
        assert metrics.gauge("service.sessions") == 0
        with pytest.raises(ServiceClosed):
            manager.create()
        manager.close_all()  # idempotent

    def test_concurrent_close_all_and_remove(self):
        # close_all / remove / evict racing from multiple threads must
        # neither raise (beyond UnknownSession) nor double-close.
        manager = make_manager(ttl_s=0.000001, max_sessions=64)
        entries = [manager.create() for _ in range(16)]
        barrier = threading.Barrier(4)
        errors = []

        def closer():
            barrier.wait()
            manager.close_all()

        def remover():
            barrier.wait()
            for entry in entries:
                try:
                    manager.remove(entry.session_id)
                except UnknownSession:
                    pass
                except Exception as exc:  # pragma: no cover - fail loud
                    errors.append(exc)

        def evictor():
            barrier.wait()
            try:
                manager.evict_expired()
            except Exception as exc:  # pragma: no cover - fail loud
                errors.append(exc)

        threads = [
            threading.Thread(target=closer),
            threading.Thread(target=closer),
            threading.Thread(target=remover),
            threading.Thread(target=evictor),
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert errors == []
        assert manager.count == 0
        assert all(e.session.closed for e in entries)


class TestValidation:
    def test_requires_datasets(self):
        with pytest.raises(ValueError):
            SessionManager({})

    def test_default_dataset_must_exist(self):
        with pytest.raises(ValueError):
            SessionManager({"a": make_dataset()}, default_dataset="b")

    def test_bad_limits(self):
        with pytest.raises(ValueError):
            make_manager(max_sessions=0)
        with pytest.raises(ValueError):
            make_manager(ttl_s=0.0)
