"""Property tests: tiled serving is bit-identical to direct selection.

The dangerous inputs for a tile cache are objects sitting exactly on
tile boundaries (binned into one tile, similar to neighbors across the
edge) and viewports whose edges coincide with tile edges.  These tests
generate datasets with a deliberate share of boundary-straddling
objects and drive random zoom/pan loops through a tiled and a cold
session, asserting byte-identical selections at every step and zoom
level.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import GeoDataset, MapSession
from repro.geo import BoundingBox
from repro.tiles import TileScheme, TileSelectionCache, build_tile_store

K = 8
MAX_ZOOM = 2


def _boundary_dataset(seed: int, n: int) -> GeoDataset:
    """Uniform points, a third snapped onto tile-edge coordinates.

    Edges of every zoom level of a unit-frame pyramid sit at multiples
    of ``1/2^z``; snapping x and/or y onto those lines puts objects
    exactly on shared tile boundaries at one or more levels.
    """
    gen = np.random.default_rng(seed)
    xs, ys = gen.random(n), gen.random(n)
    edges = np.array([0.0, 0.25, 0.5, 0.75, 1.0])
    snap = gen.random(n) < 1 / 3
    xs[snap] = gen.choice(edges, snap.sum())
    snap = gen.random(n) < 1 / 3
    ys[snap] = gen.choice(edges, snap.sum())
    # Pin the frame corners so the pyramid frame (and therefore the
    # tile edge coordinates) is identical across draws.
    xs[0], ys[0] = 0.0, 0.0
    xs[1], ys[1] = 1.0, 1.0
    return GeoDataset.build(xs, ys, weights=0.1 + 0.9 * gen.random(n))


def _sessions(dataset):
    store = build_tile_store(
        dataset,
        scheme=TileScheme(frame=dataset.frame(), max_zoom=MAX_ZOOM),
    )
    tiled = MapSession(
        dataset, k=K, tiles=TileSelectionCache(store, min_candidates=0)
    )
    cold = MapSession(dataset, k=K)
    return tiled, cold


def _assert_identical(a, b):
    assert a.result.selected.tolist() == b.result.selected.tolist()
    assert a.result.score == b.result.score


class TestBoundaryStraddling:
    @settings(max_examples=12, deadline=None)
    @given(
        seed=st.integers(0, 10_000),
        cx=st.floats(0.15, 0.85),
        cy=st.floats(0.15, 0.85),
        half=st.floats(0.05, 0.14),
    )
    def test_random_viewports_identical(self, seed, cx, cy, half):
        dataset = _boundary_dataset(seed, 250)
        tiled, cold = _sessions(dataset)
        region = BoundingBox(cx - half, cy - half, cx + half, cy + half)
        _assert_identical(tiled.start(region), cold.start(region))

    @settings(max_examples=8, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_viewport_on_tile_edges_identical(self, seed):
        # Viewport edges exactly on tile boundaries: candidates on the
        # rim are simultaneously tile-edge and viewport-edge objects.
        dataset = _boundary_dataset(seed, 250)
        tiled, cold = _sessions(dataset)
        region = BoundingBox(0.25, 0.25, 0.5, 0.5)
        _assert_identical(tiled.start(region), cold.start(region))

    @settings(max_examples=6, deadline=None)
    @given(
        seed=st.integers(0, 10_000),
        moves=st.lists(
            st.sampled_from(["zoom_in", "zoom_out", "pan_x", "pan_y"]),
            min_size=2,
            max_size=5,
        ),
    )
    def test_navigation_loops_identical(self, seed, moves):
        # Zoom and pan loops cross tile edges repeatedly and revisit
        # regions served from different zoom levels; every step must
        # stay bit-identical to the cold twin.
        dataset = _boundary_dataset(seed, 250)
        tiled, cold = _sessions(dataset)
        region = BoundingBox(0.2, 0.2, 0.55, 0.55)
        _assert_identical(tiled.start(region), cold.start(region))
        for move in moves:
            if move == "zoom_in":
                pair = tiled.zoom_in(0.7), cold.zoom_in(0.7)
            elif move == "zoom_out":
                pair = tiled.zoom_out(1.3), cold.zoom_out(1.3)
            elif move == "pan_x":
                pair = (
                    tiled.pan(dx=0.4 * tiled.region.width),
                    cold.pan(dx=0.4 * cold.region.width),
                )
            else:
                pair = (
                    tiled.pan(dy=-0.4 * tiled.region.height),
                    cold.pan(dy=-0.4 * cold.region.height),
                )
            _assert_identical(*pair)


class TestAcrossZoomLevels:
    @pytest.mark.parametrize("side", [0.9, 0.45, 0.22])
    def test_each_zoom_level_serves_identically(self, side):
        # One viewport size per pyramid level (zoom_for resolves 0, 1,
        # 2 respectively): the same dataset must serve identically from
        # every level's tiles.
        dataset = _boundary_dataset(77, 300)
        tiled, cold = _sessions(dataset)
        region = BoundingBox(0.05, 0.05, 0.05 + side, 0.05 + side)
        a, b = tiled.start(region), cold.start(region)
        assert a.tile_seeded
        _assert_identical(a, b)
