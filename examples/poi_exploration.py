#!/usr/bin/env python3
"""Interactive POI exploration: zoom, pan, consistency, click-to-expand.

Reproduces the paper's end-to-end user journey on a synthetic
Singapore-POI analogue:

1. open a viewport and select k representative POIs (SOS);
2. zoom in — previously visible POIs inside the new viewport remain
   visible (zooming consistency), new detail appears;
3. pan — overlap-visible POIs persist (panning consistency);
4. zoom out — POIs hidden at the finer level stay hidden;
5. "click" a marker to reveal the hidden POIs it represents
   (the Fig. 1(c) interaction).

Prefetching (Sec. 5.2) is enabled, so each navigation responds from
precomputed upper bounds; response times are printed per step.

Run:  python examples/poi_exploration.py
"""

import numpy as np

from repro import MapSession, represented_objects
from repro.datasets import sg_pois
from repro.geo import BoundingBox
from repro.geo.point import Point
from repro.viz import render_ascii


def densest_region(dataset, side: float) -> BoundingBox:
    """Start where the data is: the densest candidate viewport."""
    gen = np.random.default_rng(4)
    best = None
    for _ in range(40):
        anchor = int(gen.integers(len(dataset)))
        region = BoundingBox.from_center(
            Point(float(dataset.xs[anchor]), float(dataset.ys[anchor])), side
        )
        count = dataset.index.count_region(region)
        if best is None or count > best[1]:
            best = (region, count)
    return best[0]


def show_step(session, step) -> None:
    consistency = ""
    if len(step.mandatory):
        consistency = f", kept {len(step.mandatory)} visible (consistency)"
    print(
        f"[{step.operation:8s}] {len(step.result)} markers, "
        f"score={step.result.score:.4f}, "
        f"response={step.elapsed_s * 1000:.1f} ms"
        f"{', prefetched' if step.used_prefetch else ''}{consistency}"
    )
    print(render_ascii(session.dataset, step.region,
                       selected=step.result.selected, width=64, height=14))


def main() -> None:
    print("building POI dataset ...")
    dataset = sg_pois(n=25_000)
    session = MapSession(
        dataset, k=18, theta_fraction=0.02, prefetch=True,
    )

    region = densest_region(dataset, side=0.18)
    show_step(session, session.start(region))

    show_step(session, session.zoom_in(scale=0.5))
    show_step(session, session.pan(dx=region.width * 0.2, dy=0.0))
    show_step(session, session.zoom_out(scale=2.0))

    # Click-to-expand: pick the marker with the largest group of
    # *closely* represented POIs (similarity >= 0.3 — near-duplicates
    # like same-venue posts; every object is assigned to SOME marker,
    # but weak assignments aren't worth highlighting).
    step = session.history[-1]
    region_ids = dataset.objects_in(step.region)
    best_marker, best_group = None, np.empty(0, dtype=np.int64)
    for marker in step.result.selected:
        group = represented_objects(
            dataset, region_ids, step.result.selected, int(marker)
        )
        sims = dataset.similarity.sims_to(int(marker), group)
        close = group[sims >= 0.3]
        if len(close) > len(best_group):
            best_marker, best_group = int(marker), close
    print(f"clicking marker #{best_marker} "
          f"({dataset.texts[best_marker]!r}) highlights "
          f"{len(best_group)} similar hidden POIs it represents, e.g.:")
    for obj in best_group[:5]:
        print(f"  #{int(obj)}  {dataset.texts[int(obj)]!r}")

    print("\nprefetch precompute times (off the response path):")
    for kind, seconds in session.prefetch_elapsed.items():
        print(f"  {kind:8s} {seconds * 1000:8.1f} ms")


if __name__ == "__main__":
    main()
