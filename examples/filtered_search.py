#!/usr/bin/env python3
"""Filtered selection and duplicate diagnostics.

Two smaller features of the reproduction in one walkthrough:

1. the paper's **filtering condition** (Sec. 3.3): select representative
   objects *among those matching a keyword* while still scoring against
   the whole viewport population;
2. **near-duplicate diagnostics** with MinHash/LSH: how much of a
   geo-text corpus is repeated content — the redundancy that makes
   representative selection worthwhile in the first place.

Run:  python examples/filtered_search.py
"""

import numpy as np

from repro import RegionQuery, greedy_select
from repro.datasets import sg_pois
from repro.geo import BoundingBox
from repro.similarity import compute_signatures, near_duplicate_groups
from repro.similarity.minhash import _token_sets


def main() -> None:
    print("building POI dataset ...")
    dataset = sg_pois(n=15_000)
    region = BoundingBox(0.0, 0.0, 1.0, 1.0)
    query = RegionQuery.with_theta_fraction(region, k=12,
                                            theta_fraction=0.005)

    # ------------------------------------------------------------------
    # 1. Filtering condition
    # ------------------------------------------------------------------
    # Pick a keyword that actually occurs a lot: the most common token.
    from collections import Counter

    counts = Counter()
    for text in dataset.texts:
        counts.update(set(text.split()))
    keyword = counts.most_common(1)[0][0]

    matching = dataset.keyword_filter(keyword)
    print(f"\nfiltering condition: text contains {keyword!r} "
          f"({len(matching):,} of {len(dataset):,} objects match)")

    unfiltered = greedy_select(dataset, query)
    filtered = greedy_select(dataset, query, candidates=matching)
    print(f"unfiltered selection: score={unfiltered.score:.4f}")
    print(f"filtered selection  : score={filtered.score:.4f} "
          "(population unchanged; only membership of S restricted)")
    assert set(filtered.selected.tolist()) <= set(matching.tolist())
    for obj in filtered.selected[:3]:
        print(f"  #{int(obj)}  {dataset.texts[int(obj)]!r}")

    # ------------------------------------------------------------------
    # 2. Near-duplicate diagnostics
    # ------------------------------------------------------------------
    print("\nscanning for near-duplicate content (MinHash + LSH) ...")
    sets = _token_sets(dataset.texts, None)
    signatures = compute_signatures(sets, num_hashes=64, seed=0)
    groups = near_duplicate_groups(signatures, bands=16)
    covered = sum(len(g) for g in groups)
    print(f"  {len(groups):,} duplicate groups covering "
          f"{covered:,} objects ({covered / len(dataset):.0%} of the corpus)")
    biggest = groups[0]
    print(f"  biggest group: {len(biggest)} copies of "
          f"{dataset.texts[int(biggest[0])]!r}")
    spread = np.hypot(
        dataset.xs[biggest] - dataset.xs[biggest].mean(),
        dataset.ys[biggest] - dataset.ys[biggest].mean(),
    ).max()
    print(f"  spatial spread of that group: {spread:.2e} "
          "(co-located — one venue, many posts)")
    print(
        "\nThis redundancy is exactly why k representative markers can"
        "\nstand for thousands of objects (paper Fig. 1)."
    )


if __name__ == "__main__":
    main()
