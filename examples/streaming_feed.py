#!/usr/bin/env python3
"""Live-feed selection: maintain k markers while objects stream in.

Simulates a live geo-tagged feed (the streaming scenario of the
paper's related work): objects arrive one at a time; a
:class:`~repro.core.streaming.StreamingSelector` keeps a θ-feasible
set of k representative markers current at all times, swapping members
only when a newcomer genuinely improves the representative score.

The script reports the maintained score along the stream, how close it
stays to a from-scratch greedy re-optimization, and how rarely the
on-screen selection actually changes (marker stability is a feature —
users hate flickering maps).

Run:  python examples/streaming_feed.py
"""

import numpy as np

from repro import StreamingSelector
from repro.datasets import DatasetSpec, generate_clustered
from repro.geo import BoundingBox
from repro.viz import render_ascii

VIEWPORT = BoundingBox(0.25, 0.25, 0.75, 0.75)
K = 12
THETA = 0.02
CHECKPOINTS = (200, 1000, 3000, 6000)


def main() -> None:
    print("preparing the stream (a day of arrivals, shuffled) ...")
    corpus = generate_clustered(
        DatasetSpec(name="feed", n=6000, n_clusters=6,
                    duplicate_fraction=0.35, seed=11)
    )
    selector = StreamingSelector(
        corpus.similarity, VIEWPORT, k=K, theta=THETA, swap_margin=0.05
    )

    print(f"watching viewport {tuple(round(v, 2) for v in VIEWPORT)}, "
          f"k={K}, θ={THETA}\n")
    for i in range(len(corpus)):
        selector.add(
            float(corpus.xs[i]), float(corpus.ys[i]),
            float(corpus.weights[i]),
        )
        if selector.arrivals in CHECKPOINTS:
            maintained = selector.score()
            kept = list(selector.selected)
            selector.reoptimize()
            fresh = selector.score()
            selector.selected = kept  # keep maintaining, not cheating
            ratio = maintained / fresh if fresh else 1.0
            print(
                f"after {selector.arrivals:5d} arrivals: "
                f"{len(kept):2d} markers, score {maintained:.4f} "
                f"({ratio:.0%} of a fresh greedy), "
                f"{selector.swaps} swaps so far"
            )

    print("\nfinal maintained selection:")
    ds_view = corpus  # same ids — render with the full dataset
    print(render_ascii(ds_view, VIEWPORT,
                       selected=np.asarray(selector.selected),
                       width=64, height=16))
    print(
        f"stream done: {selector.arrivals} arrivals, "
        f"{selector.swaps} selection changes — "
        f"{selector.swaps / max(selector.arrivals, 1):.1%} of arrivals "
        "moved a marker."
    )


if __name__ == "__main__":
    main()
