#!/usr/bin/env python3
"""Selection gallery — the paper's Figure 6, as SVG files.

Selects 30 of ~500 objects with every method the user study compares
(Greedy, Random, MaxMin, MaxSum, DisC, K-means), renders each result
to ``examples/out/selection_<method>.svg``, and prints the
representative score per method (the quantitative half of Table 3).

Euclidean distance is the similarity metric here, exactly as in the
paper's user study (Sec. 7.2), so "representative" means "covers the
spatial distribution".

Run:  python examples/selection_gallery.py
"""

from pathlib import Path

import numpy as np

from repro import GeoDataset, RegionQuery
from repro.experiments import print_table, selector_catalog
from repro.geo import BoundingBox
from repro.viz import render_svg

OUT_DIR = Path(__file__).parent / "out"
METHODS = ["Greedy", "Random", "MaxMin", "MaxSum", "DisC", "K-means"]


def build_study_dataset() -> GeoDataset:
    """~500 clustered points with unit weights, like the user study.

    ``d_max`` is set well below the frame diagonal so similarity decays
    over a cluster-sized distance — otherwise every method's score
    saturates and the contrast the study measures disappears.
    """
    from repro.similarity import EuclideanSimilarity

    gen = np.random.default_rng(2018)
    centers = gen.random((6, 2)) * 0.7 + 0.15
    parts = [
        center + gen.normal(0.0, 0.05, (80, 2)) for center in centers
    ]
    pts = np.clip(np.concatenate(parts), 0.0, 1.0)
    xs, ys = pts[:, 0], pts[:, 1]
    return GeoDataset.build(
        xs, ys, similarity=EuclideanSimilarity(xs, ys, d_max=0.25)
    )


def main() -> None:
    OUT_DIR.mkdir(exist_ok=True)
    dataset = build_study_dataset()
    region = BoundingBox(0.0, 0.0, 1.0, 1.0)
    # theta = 0 so the diversity baselines compete on representativeness
    # alone, as the user study does.
    query = RegionQuery(region=region, k=30, theta=0.0)

    catalog = selector_catalog()
    rows = []
    for method in METHODS:
        result = catalog[method](
            dataset, query, rng=np.random.default_rng(7)
        )
        path = OUT_DIR / f"selection_{method.lower().replace('-', '')}.svg"
        render_svg(
            dataset, region, selected=result.selected,
            title=f"{method}: {len(result)} of {len(dataset)} "
                  f"(score {result.score:.3f})",
            path=path,
        )
        rows.append([method, f"{result.score:.4f}", len(result), path.name])

    print_table(
        ["method", "RP score", "selected", "svg"],
        rows,
        title="Selection gallery (Fig. 6 / Table 3 analogue)",
    )
    print(f"SVGs written to {OUT_DIR}/ — open them side by side to see\n"
          "how Greedy follows the data's density while MaxMin/DisC\n"
          "spread uniformly and lose the distribution.")


if __name__ == "__main__":
    main()
