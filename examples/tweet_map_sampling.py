#!/usr/bin/env python3
"""Scaling to large corpora with SaSS sampling (Sec. 6).

On a large synthetic US-tweet analogue, compares the plain greedy
(which touches every object in the viewport) against SaSS (which runs
the same greedy on a Hoeffding/Serfling-sized random sample), printing
runtime, the sampling ratio, and how little representative quality the
sampling costs.

Run:  python examples/tweet_map_sampling.py
"""

import time

import numpy as np

from repro import (
    RegionQuery,
    greedy_select,
    representative_score,
    sass_select,
    serfling_sample_size,
)
from repro.datasets import random_region_queries, us_tweets


def main() -> None:
    print("building large dataset (this is the expensive part) ...")
    started = time.perf_counter()
    dataset = us_tweets(n=200_000)
    print(f"  {len(dataset):,} objects in {time.perf_counter() - started:.1f}s")

    # One dense viewport, paper-style parameters.
    (query,) = random_region_queries(
        dataset, 1, region_fraction=0.12, k=25, theta_fraction=0.003,
        rng=np.random.default_rng(3), min_population=3000,
    )
    population = dataset.objects_in(query.region)
    print(f"viewport population: {len(population):,} objects, k={query.k}")

    # --- plain greedy: every object participates -------------------
    started = time.perf_counter()
    full = greedy_select(dataset, query)
    full_time = time.perf_counter() - started
    print(f"\nGreedy : score={full.score:.4f}  time={full_time:6.2f}s  "
          f"(evaluated {full.stats['gain_evaluations']:,} marginal gains)")

    # --- SaSS: greedy over a tiny uniform sample -------------------
    for epsilon in (0.05, 0.03):
        m = serfling_sample_size(epsilon, 0.1, len(population))
        started = time.perf_counter()
        sampled = sass_select(
            dataset, query, epsilon=epsilon, delta=0.1,
            rng=np.random.default_rng(11),
        )
        sass_time = time.perf_counter() - started
        # Judge SaSS's pick on the FULL population for a fair quality
        # comparison.
        quality = representative_score(dataset, population, sampled.selected)
        ratio = sampled.stats["sampling_ratio"] * 100.0
        print(
            f"SaSS   : score={quality:.4f}  time={sass_time:6.2f}s  "
            f"(ε={epsilon}, sample={m} objects = {ratio:.1f}% of viewport, "
            f"{full_time / max(sass_time, 1e-9):.0f}x faster)"
        )
        print(f"         representative quality kept: "
              f"{quality / full.score:.0%} of the full greedy's")

    print(
        "\nThe sample size depends only on (ε, δ) — not the data size —"
        "\nwhich is why the paper samples <2% of 100M objects (Sec. 7.3.2)."
    )


if __name__ == "__main__":
    main()
