#!/usr/bin/env python3
"""Quickstart: select representative, mutually visible objects for a map.

Builds a small synthetic geo-corpus, runs the paper's greedy SOS
selection over a viewport, compares it against random selection, and
renders both to the terminal.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import RegionQuery, greedy_select, representative_score
from repro.baselines import random_select
from repro.datasets import uk_tweets
from repro.geo import BoundingBox
from repro.viz import render_ascii


def main() -> None:
    # A synthetic analogue of a geo-tagged tweet corpus: clustered
    # locations, topic-leaning texts, TF-IDF cosine similarity.
    print("building dataset ...")
    dataset = uk_tweets(n=20_000)

    # The viewport ("region of user's interest") and query parameters:
    # show k=25 objects, no two closer than 0.3% of the viewport side.
    region = BoundingBox(0.30, 0.30, 0.70, 0.70)
    query = RegionQuery.with_theta_fraction(region, k=25, theta_fraction=0.01)
    population = dataset.objects_in(region)
    print(f"viewport holds {len(population)} objects; selecting k={query.k}")

    result = greedy_select(dataset, query)
    print(f"\ngreedy selection: score={result.score:.4f} "
          f"({result.stats['elapsed_s'] * 1000:.0f} ms, "
          f"{result.stats['gain_evaluations']} gain evaluations)")
    print(render_ascii(dataset, region, selected=result.selected,
                       width=72, height=24))

    baseline = random_select(dataset, query, rng=np.random.default_rng(0))
    print(f"\nrandom baseline: score={baseline.score:.4f}")

    # Scores are comparable because both are Eq. 2 over the same
    # population; the greedy should win clearly.
    gap = result.score - baseline.score
    print(f"greedy beats random by {gap:+.4f} representative score")

    # A selected object always represents itself, so re-scoring the
    # greedy result reproduces the reported score.
    check = representative_score(dataset, population, result.selected)
    assert abs(check - result.score) < 1e-9
    print("\nfirst three selected objects:")
    for obj in result.selected[:3]:
        text = dataset.texts[int(obj)] if dataset.texts else "(no text)"
        print(f"  #{int(obj)} at ({dataset.xs[obj]:.3f}, "
              f"{dataset.ys[obj]:.3f})  w={dataset.weights[obj]:.2f}  {text!r}")


if __name__ == "__main__":
    main()
