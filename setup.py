"""Setup shim.

Project metadata lives in setup.cfg.  The project deliberately ships
no pyproject.toml: the reference environment is offline, and a
[build-system] table would make pip try to download build dependencies
into an isolated environment.  With only setup.cfg + setup.py,
``pip install -e .`` takes the legacy develop path, which works offline.
"""

from setuptools import setup

setup()
