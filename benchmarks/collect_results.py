#!/usr/bin/env python3
"""Append the current benchmarks/results/*.txt to EXPERIMENTS.md.

Run after a full ``pytest benchmarks/ --benchmark-only`` pass:

    python benchmarks/collect_results.py

Replaces everything after the ``<!-- RESULTS -->`` marker with the
fresh result blocks, in a stable order.

CI bench-regression mode
------------------------

    python benchmarks/collect_results.py --compare BASELINE_DIR \
        [--max-regression 0.15] [--current DIR]

Compares the gated metrics of the current ``BENCH_*.json`` files
against a baseline directory (in CI: the previous main-branch results
restored from the actions cache).  Direction-aware: a "higher"
metric regresses when it drops more than ``--max-regression`` below
the baseline, a "lower" metric when it rises more than that above it,
and a "true" metric (bit-identity gates) must simply stay truthy.
A missing baseline file or metric passes with a note — the first run
on a fresh cache, or a newly added benchmark, must not fail CI.
Exits 1 if any gated metric regressed.
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
RESULTS = REPO / "benchmarks" / "results"
EXPERIMENTS = REPO / "EXPERIMENTS.md"
MARKER = "<!-- RESULTS -->"

ORDER = [
    "table3_user_study_sos",
    "table4_user_study_isos",
    "fig7_methods_uk",
    "fig8_methods_poi",
    "fig9_vary_epsilon",
    "fig10_vary_delta",
    "fig11_vary_region_uk",
    "fig11_vary_region_poi",
    "fig11_vary_region_us",
    "fig12_scalability_uk",
    "fig12_scalability_us",
    "fig13_prefetch",
    "fig14a_zoom_in_scale",
    "fig14b_zoom_out_scale",
    "fig14c_pan_overlap",
    "fig18_vary_k_uk",
    "fig18_vary_k_poi",
    "fig18_vary_k_us",
    "fig19_vary_theta_uk",
    "fig19_vary_theta_poi",
    "fig19_vary_theta_us",
    "fig20_isos_region_uk",
    "fig21_isos_k_uk",
    "fig22_isos_theta_uk",
    "fig23_isos_scalability_uk",
    "ablation_lazy_forward",
    "ablation_sample_bounds_sizes",
    "ablation_index",
    "ablation_aggregation",
    "ablation_bulk_init",
    "ablation_tiles",
    "ablation_predicted_prefetch",
    "parallel_scaling",
    "parallel_delta_steps",
    "temporal_slider",
    "temporal_streaming",
]

#: Gated metrics per machine-readable bench file, as
#: (dotted json path, direction).  "higher" means bigger is better,
#: "lower" means smaller is better, "true" means the value must stay
#: truthy (bit-identity gates tolerate no drift at all).
GATED_METRICS: dict[str, list[tuple[str, str]]] = {
    "BENCH_parallel.json": [
        ("init_speedup_4workers", "higher"),
        ("kernel_call_reduction", "higher"),
        ("bit_identical", "true"),
        # New with the raw-speed pass; missing in older baselines,
        # which the "metric missing — pass with note" rule tolerates.
        ("worker_scaling_4v1", "higher"),
        ("delta_speedup", "higher"),
        ("delta_bit_identical", "true"),
    ],
    "BENCH_service.json": [
        ("nominal.p95_ms", "lower"),
        ("nominal.success_rate", "higher"),
        ("overload.shed_p95_ms", "lower"),
        ("nominal.byte_identical", "true"),
    ],
    "BENCH_session_cache.json": [
        ("sim_eval_savings", "higher"),
        ("warm.p95_latency_ms", "lower"),
        ("bit_identical", "true"),
    ],
    "BENCH_tiles.json": [
        ("speedup_median", "higher"),
        ("tiled.p95_ms", "lower"),
        ("bit_identical", "true"),
    ],
    "BENCH_temporal.json": [
        ("slider.speedup_median", "higher"),
        ("slider.bit_identical", "true"),
        ("streaming.ingest_per_s", "higher"),
    ],
}


def _lookup(payload: dict, dotted: str):
    """Resolve ``a.b.c`` in nested dicts; None when any hop is absent."""
    node = payload
    for part in dotted.split("."):
        if not isinstance(node, dict) or part not in node:
            return None
        node = node[part]
    return node


def compare(
    current_dir: Path, baseline_dir: Path, max_regression: float
) -> int:
    """Print a per-metric verdict table; return the regression count."""
    regressions = 0
    compared = 0
    for name, metrics in sorted(GATED_METRICS.items()):
        cur_path = current_dir / name
        base_path = baseline_dir / name
        if not cur_path.exists():
            print(f"{name}: not produced by this run — skipped")
            continue
        if not base_path.exists():
            print(f"{name}: no baseline — pass (first run on this cache)")
            continue
        cur = json.loads(cur_path.read_text(encoding="utf-8"))
        base = json.loads(base_path.read_text(encoding="utf-8"))
        # smoke and full runs measure different workloads; comparing
        # across modes would gate on noise.
        if cur.get("mode") != base.get("mode"):
            print(
                f"{name}: mode changed "
                f"({base.get('mode')} -> {cur.get('mode')}) — skipped"
            )
            continue
        for dotted, direction in metrics:
            cur_val = _lookup(cur, dotted)
            base_val = _lookup(base, dotted)
            label = f"{name}:{dotted}"
            if cur_val is None or base_val is None:
                print(f"{label}: metric missing — pass with note")
                continue
            compared += 1
            if direction == "true":
                ok = bool(cur_val)
                detail = f"current={cur_val}"
            elif direction == "higher":
                floor = base_val * (1.0 - max_regression)
                ok = cur_val >= floor
                detail = (
                    f"current={cur_val:.4g} baseline={base_val:.4g} "
                    f"floor={floor:.4g}"
                )
            elif direction == "lower":
                ceiling = base_val * (1.0 + max_regression)
                ok = cur_val <= ceiling
                detail = (
                    f"current={cur_val:.4g} baseline={base_val:.4g} "
                    f"ceiling={ceiling:.4g}"
                )
            else:  # pragma: no cover - GATED_METRICS is author-controlled
                raise ValueError(f"unknown direction {direction!r}")
            verdict = "ok" if ok else "REGRESSION"
            print(f"{label}: {verdict} ({detail})")
            if not ok:
                regressions += 1
    print(
        f"compared {compared} gated metrics, "
        f"{regressions} regression(s)"
    )
    return regressions


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--compare",
        metavar="BASELINE_DIR",
        help="compare gated BENCH_*.json metrics against this directory "
        "instead of rewriting EXPERIMENTS.md; exit 1 on regression",
    )
    parser.add_argument(
        "--current",
        metavar="DIR",
        default=str(RESULTS),
        help="directory holding the current BENCH_*.json files "
        "(default: benchmarks/results)",
    )
    parser.add_argument(
        "--max-regression",
        type=float,
        default=0.15,
        help="allowed relative drift per gated metric (default 0.15)",
    )
    args = parser.parse_args()

    if args.compare is not None:
        return (
            1
            if compare(
                Path(args.current), Path(args.compare), args.max_regression
            )
            else 0
        )

    text = EXPERIMENTS.read_text(encoding="utf-8")
    if MARKER not in text:
        raise SystemExit(f"marker {MARKER!r} missing from {EXPERIMENTS}")
    head = text.split(MARKER)[0] + MARKER + "\n"

    blocks: list[str] = []
    seen: set[str] = set()
    names = ORDER + sorted(
        p.stem for p in RESULTS.glob("*.txt") if p.stem not in ORDER
    )
    for name in names:
        if name in seen:
            continue
        seen.add(name)
        path = RESULTS / f"{name}.txt"
        if not path.exists():
            blocks.append(f"### {name}\n\n(missing — benchmark not run)\n")
            continue
        body = path.read_text(encoding="utf-8").rstrip()
        blocks.append(f"```\n{body}\n```\n")
    EXPERIMENTS.write_text(head + "\n" + "\n".join(blocks), encoding="utf-8")
    print(f"wrote {len(blocks)} result blocks into {EXPERIMENTS}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
