#!/usr/bin/env python3
"""Append the current benchmarks/results/*.txt to EXPERIMENTS.md.

Run after a full ``pytest benchmarks/ --benchmark-only`` pass:

    python benchmarks/collect_results.py

Replaces everything after the ``<!-- RESULTS -->`` marker with the
fresh result blocks, in a stable order.
"""

from __future__ import annotations

from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
RESULTS = REPO / "benchmarks" / "results"
EXPERIMENTS = REPO / "EXPERIMENTS.md"
MARKER = "<!-- RESULTS -->"

ORDER = [
    "table3_user_study_sos",
    "table4_user_study_isos",
    "fig7_methods_uk",
    "fig8_methods_poi",
    "fig9_vary_epsilon",
    "fig10_vary_delta",
    "fig11_vary_region_uk",
    "fig11_vary_region_poi",
    "fig11_vary_region_us",
    "fig12_scalability_uk",
    "fig12_scalability_us",
    "fig13_prefetch",
    "fig14a_zoom_in_scale",
    "fig14b_zoom_out_scale",
    "fig14c_pan_overlap",
    "fig18_vary_k_uk",
    "fig18_vary_k_poi",
    "fig18_vary_k_us",
    "fig19_vary_theta_uk",
    "fig19_vary_theta_poi",
    "fig19_vary_theta_us",
    "fig20_isos_region_uk",
    "fig21_isos_k_uk",
    "fig22_isos_theta_uk",
    "fig23_isos_scalability_uk",
    "ablation_lazy_forward",
    "ablation_sample_bounds_sizes",
    "ablation_index",
    "ablation_aggregation",
    "ablation_bulk_init",
    "ablation_tiles",
    "ablation_predicted_prefetch",
    "parallel_scaling",
]


def main() -> int:
    text = EXPERIMENTS.read_text(encoding="utf-8")
    if MARKER not in text:
        raise SystemExit(f"marker {MARKER!r} missing from {EXPERIMENTS}")
    head = text.split(MARKER)[0] + MARKER + "\n"

    blocks: list[str] = []
    seen: set[str] = set()
    names = ORDER + sorted(
        p.stem for p in RESULTS.glob("*.txt") if p.stem not in ORDER
    )
    for name in names:
        if name in seen:
            continue
        seen.add(name)
        path = RESULTS / f"{name}.txt"
        if not path.exists():
            blocks.append(f"### {name}\n\n(missing — benchmark not run)\n")
            continue
        body = path.read_text(encoding="utf-8").rstrip()
        blocks.append(f"```\n{body}\n```\n")
    EXPERIMENTS.write_text(head + "\n" + "\n".join(blocks), encoding="utf-8")
    print(f"wrote {len(blocks)} result blocks into {EXPERIMENTS}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
