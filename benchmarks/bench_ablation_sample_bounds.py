"""Ablation: Hoeffding (Eq. 6) vs Serfling (Eq. 7) sample sizes.

The paper notes Serfling's finite-population inequality "provides a
smaller size for sampling"; this ablation quantifies how much smaller
across population sizes, and the runtime/quality consequence on the
US workload.
"""

import numpy as np
import pytest

from common import (
    SASS_K,
    SASS_REGION_FRACTION,
    queries,
    report_table,
    us,
)
from repro import hoeffding_sample_size, sass_select, serfling_sample_size

EPSILON = 0.05
DELTA = 0.1


def test_sample_size_table(benchmark):
    def run():
        rows = []
        h = hoeffding_sample_size(EPSILON, DELTA)
        for population in (10**3, 10**4, 10**5, 10**6, 10**8):
            s = serfling_sample_size(EPSILON, DELTA, population)
            rows.append([f"{population:,}", h, s, f"{h / s:.2f}x"])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report_table(
        "ablation_sample_bounds_sizes",
        ["population", "Hoeffding m", "Serfling m", "ratio"],
        rows,
        title=f"Ablation — sample sizes at ε={EPSILON}, δ={DELTA}",
    )
    # Serfling never exceeds Hoeffding and converges to it.
    assert all(int(r[2]) <= int(r[1]) for r in rows)


@pytest.mark.parametrize("bound", ["hoeffding", "serfling"])
def test_sass_bound_runtime(benchmark, bound):
    dataset = us()
    query = queries(
        dataset, count=1, k=SASS_K, region_fraction=SASS_REGION_FRACTION,
        min_population=5000, seed=901,
    )[0]

    def run():
        return sass_select(
            dataset, query, epsilon=EPSILON, delta=DELTA, bound=bound,
            rng=np.random.default_rng(0), evaluate_full_score=True,
        )

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    assert result.stats["score_difference"] <= 2 * EPSILON
