"""Figure 8: runtime (log scale in the paper) and score, POI dataset.

Same shape as Figure 7 on the Foursquare-POI analogue: Greedy leads on
score; SASS trails slightly on score at a fraction of the runtime.
"""

import numpy as np
import pytest

from common import DEFAULT_K, poi, queries, report_table
from repro.experiments import compare_methods, selector_catalog

METHODS = ["Greedy", "SASS", "Random", "K-means", "MaxMin", "MaxSum", "DisC"]


@pytest.fixture(scope="module")
def dataset():
    return poi()


@pytest.fixture(scope="module")
def workload(dataset):
    # POI clusters are tighter; a slightly larger region keeps the
    # population comparable to the UK workload.
    return queries(dataset, k=DEFAULT_K, region_fraction=0.02)


@pytest.mark.parametrize("method", METHODS)
def test_fig8_method_runtime(benchmark, dataset, workload, method):
    selector = selector_catalog()[method]
    query = workload[0]

    def run():
        return selector(dataset, query, rng=np.random.default_rng(0))

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    assert len(result) > 0


def test_fig8_report(benchmark, dataset, workload):
    def run():
        return compare_methods(dataset, workload, METHODS)

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report_table(
        "fig8_methods_poi",
        ["method", "runtime(s)", "score", "runs"],
        [r.row() for r in rows],
        title="Figure 8 — methods on POI (runtime & representative score)",
    )
    by_name = {r.method: r for r in rows}
    for other in METHODS[1:]:
        assert by_name["Greedy"].mean_score >= by_name[other].mean_score - 1e-9
