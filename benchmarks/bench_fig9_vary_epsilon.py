"""Figure 9: varying the error bound ε on US (SaSS vs Random).

Three panels: (a) runtime decreases as ε grows (smaller sample),
(b) sampling ratio stays in the low percent range, (c) the observed
score difference between sample and full population stays small
(well under ε).
"""

import statistics

import numpy as np
import pytest

from common import (
    DEFAULT_DELTA,
    SASS_K,
    SASS_REGION_FRACTION,
    queries,
    report_series,
    us,
)
from repro import sass_select
from repro.baselines import random_select

EPSILONS = [0.03, 0.04, 0.05, 0.06, 0.07]


@pytest.fixture(scope="module")
def dataset():
    return us()


@pytest.fixture(scope="module")
def workload(dataset):
    return queries(
        dataset, k=SASS_K, region_fraction=SASS_REGION_FRACTION,
        min_population=5000,
    )


@pytest.mark.parametrize("epsilon", EPSILONS)
def test_fig9_sass_runtime(benchmark, dataset, workload, epsilon):
    query = workload[0]

    def run():
        return sass_select(
            dataset, query, epsilon=epsilon, delta=DEFAULT_DELTA,
            rng=np.random.default_rng(1),
        )

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    assert len(result) > 0


def test_fig9_report(benchmark, dataset, workload):
    def sweep():
        rows = {"runtime_sass": [], "runtime_random": [],
                "sampling_ratio_pct": [], "score_difference": []}
        for epsilon in EPSILONS:
            times, ratios, diffs, rtimes = [], [], [], []
            for q_index, query in enumerate(workload):
                rng = np.random.default_rng(10 + q_index)
                res = sass_select(
                    dataset, query, epsilon=epsilon, delta=DEFAULT_DELTA,
                    rng=rng, evaluate_full_score=True,
                )
                times.append(res.stats["elapsed_s"])
                ratios.append(res.stats["sampling_ratio"] * 100)
                diffs.append(res.stats["score_difference"])
                rnd = random_select(dataset, query, rng=rng)
                rtimes.append(rnd.stats["elapsed_s"])
            rows["runtime_sass"].append(statistics.fmean(times))
            rows["runtime_random"].append(statistics.fmean(rtimes))
            rows["sampling_ratio_pct"].append(statistics.fmean(ratios))
            rows["score_difference"].append(statistics.fmean(diffs))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    report_series(
        "fig9_vary_epsilon", "epsilon", EPSILONS, rows,
        title="Figure 9 — varying ε on US (SaSS)",
    )
    # Paper shapes: runtime and sampling ratio shrink as ε grows ...
    assert rows["runtime_sass"][0] >= rows["runtime_sass"][-1]
    assert rows["sampling_ratio_pct"][0] >= rows["sampling_ratio_pct"][-1]
    # ... the sample is a small fraction of the region ...
    assert max(rows["sampling_ratio_pct"]) < 20.0
    # ... and the score difference stays well inside ε.
    for eps, diff in zip(EPSILONS, rows["score_difference"]):
        assert diff <= eps
