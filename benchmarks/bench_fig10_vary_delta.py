"""Figure 10: varying the confidence error δ on US (SaSS vs Random).

Same three panels as Figure 9; the dependence on δ is logarithmic, so
the curves are flatter than the ε sweep.
"""

import statistics

import numpy as np
import pytest

from common import (
    DEFAULT_EPSILON,
    SASS_K,
    SASS_REGION_FRACTION,
    queries,
    report_series,
    us,
)
from repro import sass_select
from repro.baselines import random_select

DELTAS = [0.08, 0.09, 0.10, 0.11, 0.12]


@pytest.fixture(scope="module")
def dataset():
    return us()


@pytest.fixture(scope="module")
def workload(dataset):
    return queries(
        dataset, k=SASS_K, region_fraction=SASS_REGION_FRACTION,
        min_population=5000,
    )


@pytest.mark.parametrize("delta", DELTAS)
def test_fig10_sass_runtime(benchmark, dataset, workload, delta):
    query = workload[0]

    def run():
        return sass_select(
            dataset, query, epsilon=DEFAULT_EPSILON, delta=delta,
            rng=np.random.default_rng(1),
        )

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    assert len(result) > 0


def test_fig10_report(benchmark, dataset, workload):
    def sweep():
        rows = {"runtime_sass": [], "runtime_random": [],
                "sampling_ratio_pct": [], "score_difference": []}
        for delta in DELTAS:
            times, ratios, diffs, rtimes = [], [], [], []
            for q_index, query in enumerate(workload):
                rng = np.random.default_rng(20 + q_index)
                res = sass_select(
                    dataset, query, epsilon=DEFAULT_EPSILON, delta=delta,
                    rng=rng, evaluate_full_score=True,
                )
                times.append(res.stats["elapsed_s"])
                ratios.append(res.stats["sampling_ratio"] * 100)
                diffs.append(res.stats["score_difference"])
                rnd = random_select(dataset, query, rng=rng)
                rtimes.append(rnd.stats["elapsed_s"])
            rows["runtime_sass"].append(statistics.fmean(times))
            rows["runtime_random"].append(statistics.fmean(rtimes))
            rows["sampling_ratio_pct"].append(statistics.fmean(ratios))
            rows["score_difference"].append(statistics.fmean(diffs))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    report_series(
        "fig10_vary_delta", "delta", DELTAS, rows,
        title="Figure 10 — varying δ on US (SaSS)",
    )
    # Larger δ permits a smaller sample.
    assert rows["sampling_ratio_pct"][0] >= rows["sampling_ratio_pct"][-1]
    assert max(rows["sampling_ratio_pct"]) < 20.0
    # Score differences stay small (the paper reports < 0.016).
    assert max(rows["score_difference"]) <= 2 * DEFAULT_EPSILON
