"""Ablation: spatial index choice for the region-query substrate.

The paper uses an R-tree (Sec. 7.1); this ablation measures the
region-query latency of every index over the paper's workload, plus
build times — grid indexes win on uniform region queries, the R-tree
on generality, the linear scan only at tiny scales.
"""

import time

import numpy as np
import pytest

from common import report_table, uk_plain
from repro.geo import BoundingBox
from repro.geo.point import Point
from repro.index import INDEX_CLASSES, build_index

KINDS = ["linear", "grid", "kdtree", "quadtree", "rtree"]
QUERIES = 200


@pytest.fixture(scope="module")
def points():
    dataset = uk_plain(120_000)
    return dataset.xs, dataset.ys


@pytest.fixture(scope="module")
def regions(points):
    xs, ys = points
    gen = np.random.default_rng(3)
    out = []
    for _ in range(QUERIES):
        anchor = int(gen.integers(len(xs)))
        out.append(
            BoundingBox.from_center(
                Point(float(xs[anchor]), float(ys[anchor])), 0.01
            )
        )
    return out


@pytest.mark.parametrize("kind", KINDS)
def test_index_region_query(benchmark, kind, points, regions):
    xs, ys = points
    index = build_index(kind, xs, ys)

    def run():
        total = 0
        for region in regions:
            total += len(index.query_region(region))
        return total

    total = benchmark.pedantic(run, rounds=3, iterations=1)
    assert total > 0


def test_index_ablation_report(benchmark, points, regions):
    xs, ys = points

    def run():
        rows = []
        reference = None
        for kind in KINDS:
            started = time.perf_counter()
            index = build_index(kind, xs, ys)
            build_s = time.perf_counter() - started

            started = time.perf_counter()
            counts = [len(index.query_region(r)) for r in regions]
            query_s = time.perf_counter() - started
            if reference is None:
                reference = counts
            assert counts == reference, kind  # all indexes agree
            rows.append([
                kind, f"{build_s:.3f}",
                f"{query_s / QUERIES * 1000:.3f}",
            ])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report_table(
        "ablation_index",
        ["index", "build(s)", "query(ms, mean)"],
        rows,
        title=f"Ablation — index choice on 120k points, {QUERIES} "
              "paper-style region queries",
    )
    # The grid wins on this workload; note the numpy reality that a
    # fully vectorized linear scan is competitive with pythonic tree
    # traversals at this scale — the trees pay off per *narrow* query
    # as data grows, and the R-tree additionally supports incremental
    # insert.  Sanity-check relative magnitudes only.
    by_kind = {r[0]: float(r[2]) for r in rows}
    assert by_kind["grid"] < by_kind["linear"]
    for kind in ("kdtree", "quadtree", "rtree"):
        assert by_kind[kind] < 10.0 * by_kind["linear"]
    assert set(INDEX_CLASSES) == set(KINDS)
