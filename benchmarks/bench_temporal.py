"""Time-slider navigation and streaming-ingest gates.

Two fixed-seed temporal workloads:

**Time slider** — a :class:`~repro.core.session.MapSession` over a
timestamped corpus steps a fixed-span time window forward at a constant
stride.  The warm session (incremental delta maintenance on) must
serve the steady-state steps at least ``MIN_SLIDER_SPEEDUP`` times
faster than a cold twin that re-initializes from scratch at every
window, with byte-identical selections on every step.  The first step
is excluded from the timing median: the delta memo is seeded at
``start``, but the first step pays the memo's windowed re-anchor.

The warm configuration deliberately leaves ``prefetch`` off: the
*spatial* prefetcher precomputes masses for every pan/zoom successor
on each commit, which dominates wall-clock at bench scale and is
already gated by ``fig13_prefetch``.  The temporal prefetcher (which
shares the flag) is covered functionally by ``tests/test_temporal.py``;
this gate isolates the delta-served slider path the acceptance
criterion names.

**Streaming ingest** — a long-lived :class:`StreamingSelector` (the
service's per-session stream) absorbs a batched object stream plus a
retraction and an expiry sweep; the gate records sustained objects/s
so index-maintenance regressions show up in ``--compare``.

``REPRO_BENCH_MODE`` selects the scale: ``smoke`` (default; PR CI)
runs a 40k-object corpus; ``full`` (nightly) runs 1M objects, where
cold per-step re-initialization is paper-scale expensive.

Writes ``benchmarks/results/BENCH_temporal.json`` for the CI
bench-regression gate.  Asserts:

1. every warm slider step selects byte-identically to its cold twin;
2. the warm steady-state heap-init median beats cold re-init by
   ``MIN_SLIDER_SPEEDUP`` (3x, the acceptance gate, in both modes);
3. the warm trace was actually served by the new machinery (delta memo
   or temporal prefetch seeded the steady-state steps);
4. the stream ends θ-feasible with the expected live population.
"""

from __future__ import annotations

import functools
import json
import os
import statistics
import time

import numpy as np
import pytest

from common import RESULTS_DIR, report_table
from repro.core.session import MapSession
from repro.core.streaming import StreamingSelector
from repro.datasets import uk_tweets
from repro.geo import BoundingBox
from repro.similarity import GrowableEuclideanSimilarity

pytestmark = pytest.mark.bench

MODE = os.environ.get("REPRO_BENCH_MODE", "smoke")

MIN_SLIDER_SPEEDUP = 3.0
MIN_INGEST_PER_S = 200.0

N_OBJECTS = 40_000 if MODE == "smoke" else 1_000_000
K = 16
THETA_FRACTION = 0.01
WINDOW = (0.2, 0.4)  # span 0.2 of the corpus' [0, 1) time range
DT = 0.05            # within the delta margin (0.5 * span = 0.1)
STEPS = 8 if MODE == "smoke" else 12
# Viewport linear fraction of the frame, sized so the windowed
# population stays in the low thousands at either corpus scale.
VIEWPORT_FRACTION = 0.5 if MODE == "smoke" else 0.125

STREAM_OBJECTS = 2_000 if MODE == "smoke" else 10_000
STREAM_BATCH = 100
STREAM_K = 8
STREAM_THETA = 0.02


@functools.lru_cache(maxsize=None)
def _dataset():
    """Text-free timestamped UK analogue (Euclidean similarity)."""
    return uk_tweets(n=N_OBJECTS, with_texts=False, with_timestamps=True)


def _viewport(dataset) -> BoundingBox:
    frame = dataset.frame()
    width = frame.width * VIEWPORT_FRACTION
    height = frame.height * VIEWPORT_FRACTION
    x0 = frame.minx + (frame.width - width) / 2.0
    y0 = frame.miny + (frame.height - height) / 2.0
    return BoundingBox(x0, y0, x0 + width, y0 + height)


def _run_slider(dataset, start, warm: bool):
    """One start + STEPS forward slider steps; per-step wall times."""
    with MapSession(
        dataset,
        k=K,
        theta_fraction=THETA_FRACTION,
        time_window=WINDOW,
        delta=warm,
    ) as session:
        session.start(start)
        steps = [session.time_step(DT) for _ in range(STEPS)]
        return {
            "selected": [s.result.selected.tolist() for s in steps],
            "scores": [s.result.score for s in steps],
            "windows": [s.time_window for s in steps],
            "step_seconds": [s.elapsed_s for s in steps],
            "init_seconds": [
                s.result.stats.get("init_seconds", 0.0) for s in steps
            ],
            "seeded_steps": sum(
                s.delta_seeded or s.temporal_seeded for s in steps
            ),
            "temporal_serves": int(
                session.metrics.count("session.temporal_prefetch_serves")
            ),
            "delta_serves": int(session.metrics.count("delta.serves")),
        }


def test_time_slider_gate():
    dataset = _dataset()
    start = _viewport(dataset)

    cold = _run_slider(dataset, start, warm=False)
    warm = _run_slider(dataset, start, warm=True)

    # Byte-identity on every step BEFORE any timing claim.
    assert warm["selected"] == cold["selected"], (
        "warm slider selections diverged from the cold twin"
    )
    assert warm["scores"] == cold["scores"]
    assert warm["windows"] == cold["windows"]
    # The warm trace must actually exercise the new machinery on the
    # steady-state steps (everything after the stride-establishing
    # first step).
    assert warm["seeded_steps"] >= STEPS - 1, (
        f"only {warm['seeded_steps']}/{STEPS} warm steps were seeded"
    )

    # The gate is on heap *initialization* — the work the delta memo
    # replaces (the acceptance criterion's "cold per-step re-init");
    # whole-step wall times are recorded alongside for context.
    cold_median = statistics.median(cold["init_seconds"][1:])
    warm_median = statistics.median(warm["init_seconds"][1:])
    speedup = cold_median / warm_median if warm_median else float("inf")
    cold_step_median = statistics.median(cold["step_seconds"][1:])
    warm_step_median = statistics.median(warm["step_seconds"][1:])

    RESULTS_DIR.mkdir(exist_ok=True)
    out = RESULTS_DIR / "BENCH_temporal.json"
    existing = {}
    if out.exists():
        existing = json.loads(out.read_text(encoding="utf-8"))
    existing.update(
        {
            "mode": MODE,
            "slider": {
                "objects": N_OBJECTS,
                "k": K,
                "window_span": WINDOW[1] - WINDOW[0],
                "dt": DT,
                "steps": STEPS,
                "cold_median_s": cold_median,
                "delta_median_s": warm_median,
                "speedup_median": speedup,
                "cold_step_median_s": cold_step_median,
                "delta_step_median_s": warm_step_median,
                "bit_identical": True,
                "seeded_steps": warm["seeded_steps"],
                "temporal_prefetch_serves": warm["temporal_serves"],
                "delta_serves": warm["delta_serves"],
                "min_speedup": MIN_SLIDER_SPEEDUP,
            },
        }
    )
    out.write_text(json.dumps(existing, indent=2) + "\n", encoding="utf-8")

    report_table(
        "temporal_slider",
        ["trace", "init median (ms)", "step median (ms)", "seeded",
         "init speedup"],
        [
            [
                "cold",
                f"{cold_median * 1000:.2f}",
                f"{cold_step_median * 1000:.2f}",
                "0",
                "1.00x",
            ],
            [
                "warm",
                f"{warm_median * 1000:.2f}",
                f"{warm_step_median * 1000:.2f}",
                f"{warm['seeded_steps']}/{STEPS}",
                f"{speedup:.2f}x",
            ],
        ],
        title=(
            f"Time slider [{MODE}]: {STEPS} steps of dt={DT} over "
            f"{N_OBJECTS:,} objects, k={K} "
            f"(median init speedup {speedup:.2f}x, "
            f"gate {MIN_SLIDER_SPEEDUP:.1f}x, byte-identical; "
            f"{warm['delta_serves']} delta serves)"
        ),
    )
    assert speedup >= MIN_SLIDER_SPEEDUP, (
        f"warm slider steps only {speedup:.2f}x faster than cold "
        f"re-selection (gate {MIN_SLIDER_SPEEDUP:.1f}x); see {out}"
    )


def test_streaming_ingest_gate():
    gen = np.random.default_rng(2018)
    xs = gen.random(STREAM_OBJECTS)
    ys = gen.random(STREAM_OBJECTS)
    weights = gen.random(STREAM_OBJECTS)
    ts = np.arange(STREAM_OBJECTS, dtype=float)

    stream = StreamingSelector(
        GrowableEuclideanSimilarity(d_max=float(np.sqrt(2.0))),
        BoundingBox(0.0, 0.0, 1.0, 1.0),
        k=STREAM_K,
        theta=STREAM_THETA,
    )
    # repro-lint: disable=RL002 -- reporting-only duration measurement (elapsed_s/op timing); never influences which objects are selected
    started = time.perf_counter()
    for lo in range(0, STREAM_OBJECTS, STREAM_BATCH):
        hi = min(lo + STREAM_BATCH, STREAM_OBJECTS)
        stream.similarity.append(xs[lo:hi], ys[lo:hi])
        stream.extend(xs[lo:hi], ys[lo:hi], weights=weights[lo:hi],
                      ts=ts[lo:hi])
    # repro-lint: disable=RL002 -- reporting-only duration measurement (elapsed_s/op timing); never influences which objects are selected
    ingest_s = time.perf_counter() - started
    ingest_per_s = STREAM_OBJECTS / ingest_s

    # Churn the population the way the service does and confirm the
    # selection survives θ-feasible.
    stream.remove(stream.selected[0])
    stream.expire_before(STREAM_OBJECTS * 0.25)
    sel = stream.selected
    assert len(sel) <= STREAM_K
    for i, a in enumerate(sel):
        for b in sel[i + 1:]:
            dist = float(np.hypot(xs[a] - xs[b], ys[a] - ys[b]))
            assert dist >= STREAM_THETA

    RESULTS_DIR.mkdir(exist_ok=True)
    out = RESULTS_DIR / "BENCH_temporal.json"
    existing = {}
    if out.exists():
        existing = json.loads(out.read_text(encoding="utf-8"))
    existing.update(
        {
            "mode": MODE,
            "streaming": {
                "objects": STREAM_OBJECTS,
                "batch": STREAM_BATCH,
                "k": STREAM_K,
                "theta": STREAM_THETA,
                "ingest_seconds": ingest_s,
                "ingest_per_s": ingest_per_s,
                "swaps": stream.swaps,
                "expired": stream.expired,
                "min_ingest_per_s": MIN_INGEST_PER_S,
            },
        }
    )
    out.write_text(json.dumps(existing, indent=2) + "\n", encoding="utf-8")

    report_table(
        "temporal_streaming",
        ["metric", "value"],
        [
            ["objects ingested", f"{STREAM_OBJECTS:,}"],
            ["ingest rate", f"{ingest_per_s:,.0f} obj/s"],
            ["swaps", str(stream.swaps)],
            ["expired", str(stream.expired)],
        ],
        title=(
            f"Streaming ingest [{MODE}]: {STREAM_OBJECTS:,} objects in "
            f"batches of {STREAM_BATCH}, k={STREAM_K} "
            f"({ingest_per_s:,.0f} obj/s, gate {MIN_INGEST_PER_S:.0f})"
        ),
    )
    assert ingest_per_s >= MIN_INGEST_PER_S, (
        f"streaming ingest only {ingest_per_s:.0f} obj/s "
        f"(gate {MIN_INGEST_PER_S:.0f}); see {out}"
    )
