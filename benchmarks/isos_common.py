"""Shared driver for the ISOS benchmark family (Figures 13–14, 20–23).

Measures per-operation response time (zoom-in / zoom-out / pan), with
and without prefetching, over a query workload — the six curves
(Greedy-in/out/pan vs Pre-in/out/pan) of the appendix figures.
"""

from __future__ import annotations

import statistics

from common import queries
from repro import GeoDataset, MapSession

OPERATIONS = ("zoom_in", "zoom_out", "pan")
CURVES = [
    ("Greedy-in", "zoom_in", False), ("Greedy-out", "zoom_out", False),
    ("Greedy-pan", "pan", False),
    ("Pre-in", "zoom_in", True), ("Pre-out", "zoom_out", True),
    ("Pre-pan", "pan", True),
]


def run_operation(session: MapSession, op: str, zoom_in_scale=0.5,
                  zoom_out_scale=2.0, pan_fraction=0.5):
    if op == "zoom_in":
        return session.zoom_in(zoom_in_scale)
    if op == "zoom_out":
        return session.zoom_out(zoom_out_scale)
    if op == "pan":
        return session.pan(session.region.width * pan_fraction, 0.0)
    raise ValueError(f"unknown operation {op!r}")


def operation_time(
    dataset: GeoDataset,
    workload,
    op: str,
    prefetch: bool,
    k: int,
    theta_fraction: float = 0.003,
) -> float:
    """Mean response time of one operation kind over the workload."""
    times = []
    for query in workload:
        session = MapSession(
            dataset, k=k, theta_fraction=theta_fraction, prefetch=prefetch,
        )
        session.start(query.region)
        step = run_operation(session, op)
        times.append(step.elapsed_s)
    return statistics.fmean(times)


def isos_sweep(
    dataset: GeoDataset,
    values,
    workload_for,
    k_for=None,
    theta_for=None,
) -> dict[str, list[float]]:
    """Six ISOS curves over a parameter sweep.

    ``workload_for(value)`` yields the query list for a sweep value;
    ``k_for``/``theta_for`` optionally derive per-value parameters
    (defaults: k=50, theta_fraction=0.003).
    """
    out = {label: [] for label, _op, _pf in CURVES}
    for value in values:
        workload = workload_for(value)
        k = k_for(value) if k_for else 50
        theta_fraction = theta_for(value) if theta_for else 0.003
        for label, op, prefetch in CURVES:
            out[label].append(
                operation_time(
                    dataset, workload, op, prefetch, k, theta_fraction
                )
            )
    return out


def default_workload(dataset, region_fraction=0.02, k=50,
                     theta_fraction=0.003, min_population=500, seed=800):
    return queries(
        dataset, count=2, region_fraction=region_fraction, k=k,
        theta_fraction=theta_fraction, min_population=min_population,
        seed=seed,
    )
