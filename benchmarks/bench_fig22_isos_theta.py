"""Figure 22 (Appendix F.3): ISOS response time vs θ.

Mirrors Figure 19's SOS result: the visibility threshold barely moves
the runtime of any variant.
"""

import pytest

from common import report_series, uk
from isos_common import default_workload, isos_sweep

THETA_FRACTIONS = [0.001, 0.002, 0.003, 0.004, 0.005]


@pytest.fixture(scope="module")
def dataset():
    return uk()


def test_fig22_isos_theta_sweep(benchmark, dataset):
    def run():
        return isos_sweep(
            dataset,
            THETA_FRACTIONS,
            workload_for=lambda tf: default_workload(
                dataset, region_fraction=0.02, theta_fraction=tf,
                min_population=800,
            ),
            theta_for=lambda tf: tf,
        )

    series = benchmark.pedantic(run, rounds=1, iterations=1)
    report_series(
        "fig22_isos_theta_uk", "theta_fraction", THETA_FRACTIONS, series,
        title="Figure 22 — ISOS vs θ on UK (runtime, s)",
    )
    # Stability of the prefetched variants across θ.
    for op in ("in", "out", "pan"):
        values = series[f"Pre-{op}"]
        assert max(values) <= 5.0 * max(min(values), 1e-9), op
