"""Table 4: the ISOS user study, reproduced computationally.

The paper rates each method's selection *after* a zoom-in, zoom-out
and pan (window halved relative to Table 3).  Our Greedy runs through
the real consistency-aware session; the baselines — which have no
notion of consistency, as the paper notes — re-select from scratch on
the new viewport.  The shape to match per operation: Greedy's RP score
leads, MaxSum trails.
"""

import numpy as np
import pytest

from common import report_table
from repro import GeoDataset, MapSession, RegionQuery, representative_score
from repro.experiments import selector_catalog
from repro.geo import BoundingBox
from repro.similarity import EuclideanSimilarity

METHODS = ["Greedy", "Random", "MaxMin", "MaxSum", "DisC", "K-means"]
OPERATIONS = ["zoom_in", "zoom_out", "pan"]
K = 30


@pytest.fixture(scope="module")
def study_dataset():
    gen = np.random.default_rng(2018)
    centers = gen.random((6, 2)) * 0.7 + 0.15
    parts = [center + gen.normal(0.0, 0.05, (84, 2)) for center in centers]
    pts = np.clip(np.concatenate(parts), 0.0, 1.0)
    xs, ys = pts[:, 0], pts[:, 1]
    return GeoDataset.build(
        xs, ys, similarity=EuclideanSimilarity(xs, ys, d_max=0.25)
    )


# Window halved vs Table 3, centered on the densest cluster so the
# zoom-in target is populated.
from repro.geo.point import Point  # noqa: E402

START = BoundingBox.from_center(Point(0.49, 0.28), 0.5)


def region_after(op: str) -> BoundingBox:
    if op == "zoom_in":
        return START.zoomed_in(0.5)
    if op == "zoom_out":
        return START.zoomed_out(1.6)
    return START.panned(START.width * 0.4, 0.0)


def greedy_after(dataset, op: str) -> float:
    session = MapSession(dataset, k=K, theta_fraction=0.0)
    session.start(START)
    step = getattr(session, op)(
        **({"scale": 0.5} if op == "zoom_in"
           else {"scale": 1.6} if op == "zoom_out"
           else {"dx": START.width * 0.4, "dy": 0.0})
    )
    return step.result.score


def baseline_after(dataset, method: str, op: str) -> float:
    region = region_after(op)
    query = RegionQuery(region=region, k=K, theta=0.0)
    result = selector_catalog()[method](
        dataset, query, rng=np.random.default_rng(7)
    )
    return representative_score(
        dataset, dataset.objects_in(region), result.selected
    )


def test_table4_user_study(benchmark, study_dataset):
    def run():
        table = {}
        for op in OPERATIONS:
            row = {"Greedy": greedy_after(study_dataset, op)}
            for method in METHODS[1:]:
                row[method] = baseline_after(study_dataset, method, op)
            table[op] = row
        return table

    table = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        [op] + [f"{table[op][m]:.4f}" for m in METHODS]
        for op in OPERATIONS
    ]
    report_table(
        "table4_user_study_isos",
        ["operation", *METHODS],
        rows,
        title="Table 4 — ISOS user study (computational reproduction)",
    )
    for op in OPERATIONS:
        scores = table[op]
        # Greedy leads despite carrying the consistency constraints.
        others = [scores[m] for m in METHODS[1:]]
        assert scores["Greedy"] >= max(others) - 0.02, op
        assert scores["MaxSum"] == min(scores.values()), op
