"""Figure 12: scalability with dataset size.

Panel (a): Greedy on UK as the corpus grows 1x..2x — runtime grows,
because a fixed-size region of a denser corpus holds more objects.
Panel (b): SaSS on US over growing sizes — runtime barely moves,
because the sample size is independent of the corpus size.

The corpora are the full text datasets (TF-IDF cosine similarity);
the US base is halved relative to the other benchmarks and its
multipliers thinned so the corpus builds stay affordable.  Query
regions are fixed on the base dataset so every size is measured on
the same viewports.
"""

import statistics

import numpy as np

from common import DEFAULT_K, SASS_K, prefix_dataset, queries, report_series
from repro import greedy_select, sass_select
from repro.baselines import random_select
from repro.datasets import uk_tweets, us_tweets

UK_MULTIPLIERS = [1.0, 1.25, 1.5, 1.75, 2.0]
US_MULTIPLIERS = [1.0, 1.5, 2.0]
UK_BASE = 120_000
US_BASE = 300_000


def test_fig12_uk_greedy_scalability(benchmark):
    def run():
        series = {"Greedy": [], "Random": []}
        # One world at the largest size; each sweep point is a prefix.
        world = uk_tweets(n=int(UK_BASE * UK_MULTIPLIERS[-1]))
        base_workload = queries(
            prefix_dataset(world, UK_BASE), k=DEFAULT_K,
            min_population=300, seed=100,
        )
        for mult in UK_MULTIPLIERS:
            dataset = prefix_dataset(world, int(UK_BASE * mult))
            g_times, r_times = [], []
            for q_index, query in enumerate(base_workload):
                g_times.append(
                    greedy_select(dataset, query).stats["elapsed_s"]
                )
                r_times.append(
                    random_select(
                        dataset, query, rng=np.random.default_rng(q_index)
                    ).stats["elapsed_s"]
                )
            series["Greedy"].append(statistics.fmean(g_times))
            series["Random"].append(statistics.fmean(r_times))
        return series

    series = benchmark.pedantic(run, rounds=1, iterations=1)
    report_series(
        "fig12_scalability_uk",
        "size_multiplier", UK_MULTIPLIERS, series,
        title="Figure 12(a) — scalability on UK (runtime, s)",
    )
    # Greedy cost grows with data volume.
    assert series["Greedy"][-1] > series["Greedy"][0]


def test_fig12_us_sass_scalability(benchmark):
    def run():
        series = {"SASS": [], "Random": []}
        world = us_tweets(n=int(US_BASE * US_MULTIPLIERS[-1]))
        base_workload = queries(
            prefix_dataset(world, US_BASE), k=SASS_K, region_fraction=0.16,
            min_population=5000, seed=200,
        )
        for mult in US_MULTIPLIERS:
            dataset = prefix_dataset(world, int(US_BASE * mult))
            s_times, r_times = [], []
            for q_index, query in enumerate(base_workload):
                s_times.append(
                    sass_select(
                        dataset, query, rng=np.random.default_rng(q_index)
                    ).stats["elapsed_s"]
                )
                r_times.append(
                    random_select(
                        dataset, query, rng=np.random.default_rng(q_index)
                    ).stats["elapsed_s"]
                )
            series["SASS"].append(statistics.fmean(s_times))
            series["Random"].append(statistics.fmean(r_times))
        return series

    series = benchmark.pedantic(run, rounds=1, iterations=1)
    report_series(
        "fig12_scalability_us",
        "size_multiplier", US_MULTIPLIERS, series,
        title="Figure 12(b) — scalability on US (runtime, s)",
    )
    # SaSS runtime changes only mildly as the corpus doubles (paper:
    # "only changes slightly"): allow 2.5x against a 2x data growth,
    # versus the strictly growing full-greedy cost of panel (a).
    assert series["SASS"][-1] <= 2.5 * max(series["SASS"][0], 1e-9)
