"""Table 3: the SOS user study, reproduced computationally.

The paper asked 15 students to rate how well each method's 30-of-500
selection represents the data, and found the votes consistent with the
representative score (Eq. 2).  We cannot re-run the panel, so we
reproduce the quantitative column (RP score, Euclidean similarity as
in the study) and substitute the votes with an independent coverage
proxy: the mean distance from each object to its nearest selected
object (lower is better — this is the WMSD criterion the paper notes
the score reduces to).  The shape to match: Greedy first, MaxSum last,
MaxMin/DisC clearly behind Random/K-means.
"""

import numpy as np
import pytest

from common import report_table
from repro import GeoDataset, RegionQuery
from repro.experiments import selector_catalog
from repro.geo import BoundingBox
from repro.similarity import EuclideanSimilarity

METHODS = ["Greedy", "Random", "MaxMin", "MaxSum", "DisC", "K-means"]


@pytest.fixture(scope="module")
def study_dataset():
    """~500 clustered points, unit weights, Euclidean similarity."""
    gen = np.random.default_rng(2018)
    centers = gen.random((6, 2)) * 0.7 + 0.15
    parts = [center + gen.normal(0.0, 0.05, (84, 2)) for center in centers]
    pts = np.clip(np.concatenate(parts), 0.0, 1.0)
    xs, ys = pts[:, 0], pts[:, 1]
    return GeoDataset.build(
        xs, ys, similarity=EuclideanSimilarity(xs, ys, d_max=0.25)
    )


def mean_nearest_selected_distance(dataset, selected) -> float:
    """The vote proxy: average distance to the nearest marker."""
    best = np.full(len(dataset), np.inf)
    for v in selected:
        d = np.hypot(dataset.xs - dataset.xs[v], dataset.ys - dataset.ys[v])
        np.minimum(best, d, out=best)
    return float(best.mean())


def test_table3_user_study(benchmark, study_dataset):
    query = RegionQuery(
        region=BoundingBox(0.0, 0.0, 1.0, 1.0), k=30, theta=0.0
    )
    catalog = selector_catalog()

    def run():
        out = {}
        for method in METHODS:
            result = catalog[method](
                study_dataset, query, rng=np.random.default_rng(7)
            )
            out[method] = (
                result.score,
                mean_nearest_selected_distance(study_dataset, result.selected),
            )
        return out

    scores = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        [m, f"{scores[m][0]:.4f}", f"{scores[m][1]:.4f}"] for m in METHODS
    ]
    report_table(
        "table3_user_study_sos",
        ["method", "RP score", "mean-dist proxy (lower=better)"],
        rows,
        title="Table 3 — SOS user study (computational reproduction)",
    )
    # Paper shape: Greedy has the best RP score; MaxSum the worst.
    assert scores["Greedy"][0] == max(s for s, _d in scores.values())
    assert scores["MaxSum"][0] == min(s for s, _d in scores.values())
