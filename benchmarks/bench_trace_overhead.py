"""Tracing overhead gate on the interactive hot path.

The tracer ships compiled into the selection hot path; this benchmark
holds it to its contract on a fixed-seed explore workload:

* **no-op budget** — the default :data:`NULL_TRACER` must cost <= 2%
  of a navigation step.  The no-op's per-callsite cost is measured
  directly (a tight loop over ``span()``/``record()``/``event()``) and
  multiplied by the *actual* span-site count of a traced step, so the
  gate holds regardless of how the workload is parallelized.
* **active budget** — a recording :class:`Tracer` must stay within 8%
  of the default-tracer wall time over the whole workload.
* **bit-identity** — traced selections equal untraced ones, step by
  step.

Writes ``benchmarks/results/BENCH_trace.json`` for the CI artifact,
plus a sample Chrome-trace export validated by the schema gate.
"""

from __future__ import annotations

import json
import statistics
import time

import numpy as np
import pytest

from common import RESULTS_DIR, report_table, uk
from repro import MapSession, Tracer
from repro.trace import NULL_TRACER, validate_chrome_trace_file
from repro.trace.export import write_chrome_trace

pytestmark = pytest.mark.bench

ROUNDS = 7
WARMUP = 2
NULL_OVERHEAD_LIMIT = 0.02
ACTIVE_OVERHEAD_LIMIT = 0.08
K = 100
SEED = 2018
REGION_FRACTION = 0.02
PAN_STEPS = ((0.004, 0.0), (0.0, 0.004), (-0.004, 0.002))
ZOOM_SCALES = (0.8, 0.85)


def _start_region(dataset):
    from repro.datasets import random_region_queries

    (query,) = random_region_queries(
        dataset, 1,
        region_fraction=REGION_FRACTION,
        k=K,
        rng=np.random.default_rng(SEED),
        min_population=1000,
    )
    return query.region


def _replay(dataset, region, tracer=None):
    session = MapSession(dataset, k=K, prefetch=True, tracer=tracer)
    steps = [session.start(region)]
    for scale in ZOOM_SCALES:
        steps.append(session.zoom_in(scale))
    for dx, dy in PAN_STEPS:
        steps.append(session.pan(dx, dy))
    session.close()
    return steps


def _best_time(fn, rounds=ROUNDS, warmup=WARMUP):
    for _ in range(warmup):
        fn()
    samples = []
    for _ in range(rounds):
        started = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - started)
    return min(samples), statistics.median(samples)


def _null_callsite_cost_s(iterations: int = 200_000) -> float:
    """Seconds per no-op span callsite (enter + exit + annotate)."""
    tracer = NULL_TRACER
    for _ in range(1000):  # warm the bytecode path
        with tracer.span("warm") as span:
            span.annotate(x=1)
    started = time.perf_counter()
    for _ in range(iterations):
        with tracer.span("site", arg=1) as span:
            span.annotate(x=1)
    return (time.perf_counter() - started) / iterations


def test_trace_overhead():
    dataset = uk()
    region = _start_region(dataset)

    # --- bit-identity: traced == untraced, step by step -------------
    plain_steps = _replay(dataset, region)
    traced_steps = _replay(dataset, region, tracer=Tracer())
    assert len(plain_steps) == len(traced_steps)
    for p, t in zip(plain_steps, traced_steps):
        assert p.result.selected.tolist() == t.result.selected.tolist(), (
            f"traced {t.operation} selection diverged"
        )
        assert p.result.score == t.result.score

    # --- no-op budget: primitive cost x measured span sites ---------
    sites_per_step = statistics.fmean(
        sum(1 for _ in step.span.walk()) for step in traced_steps
    )
    step_seconds = statistics.fmean(s.elapsed_s for s in plain_steps)
    null_cost = _null_callsite_cost_s()
    null_fraction = (null_cost * sites_per_step) / step_seconds

    # --- active budget: recording tracer vs default -----------------
    default_best, default_median = _best_time(
        lambda: _replay(dataset, region)
    )

    def traced_run():
        _replay(dataset, region, tracer=Tracer())

    active_best, active_median = _best_time(traced_run)
    active_overhead = active_best / default_best - 1.0

    # --- sample export, validated by the schema gate ----------------
    tracer = Tracer()
    _replay(dataset, region, tracer=tracer)
    RESULTS_DIR.mkdir(exist_ok=True)
    sample = RESULTS_DIR / "trace_sample.json"
    write_chrome_trace(tracer, sample)
    stats = validate_chrome_trace_file(sample)

    payload = {
        "workload": {
            "dataset": "uk",
            "objects": len(dataset),
            "k": K,
            "seed": SEED,
            "steps": len(plain_steps),
            "region_fraction": REGION_FRACTION,
        },
        "null_tracer": {
            "cost_per_site_ns": null_cost * 1e9,
            "span_sites_per_step": sites_per_step,
            "fraction_of_step": null_fraction,
            "limit": NULL_OVERHEAD_LIMIT,
        },
        "active_tracer": {
            "default_best_s": default_best,
            "default_median_s": default_median,
            "traced_best_s": active_best,
            "traced_median_s": active_median,
            "overhead": active_overhead,
            "limit": ACTIVE_OVERHEAD_LIMIT,
        },
        "sample_trace": {"path": sample.name, **stats},
        "bit_identical": True,
    }
    out = RESULTS_DIR / "BENCH_trace.json"
    out.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")

    report_table(
        "trace_overhead",
        ["measure", "value", "limit"],
        [
            [
                "null span cost",
                f"{null_cost * 1e9:.0f} ns/site",
                "",
            ],
            [
                "null fraction of step",
                f"{null_fraction:.3%}",
                f"{NULL_OVERHEAD_LIMIT:.0%}",
            ],
            [
                "active overhead",
                f"{active_overhead:+.2%}",
                f"{ACTIVE_OVERHEAD_LIMIT:.0%}",
            ],
            [
                "spans per step",
                f"{sites_per_step:.1f}",
                "",
            ],
        ],
        title="Tracer overhead on the explore hot path",
    )

    assert null_fraction < NULL_OVERHEAD_LIMIT, (
        f"no-op tracer costs {null_fraction:.2%} of a navigation step "
        f"(limit {NULL_OVERHEAD_LIMIT:.0%}); see {out}"
    )
    assert active_overhead < ACTIVE_OVERHEAD_LIMIT, (
        f"active tracer adds {active_overhead:.2%} wall time "
        f"(limit {ACTIVE_OVERHEAD_LIMIT:.0%}); see {out}"
    )
