"""Ablation: exact per-candidate init (Algorithm 1) vs bulk init.

``init_mode="bulk"`` computes every initial gain with one vectorized
``weighted_sims_sum`` sweep — an optimization available because our
similarity models expose linear structure (the paper's black-box
``Sim`` cannot do this).  Selections are identical; this ablation
quantifies the response-time gap, which also bounds how much of the
non-prefetch cost is heap initialization.
"""

import pytest

from common import DEFAULT_K, queries, report_table, uk
from repro import greedy_select


@pytest.fixture(scope="module")
def dataset():
    return uk()


@pytest.fixture(scope="module")
def query(dataset):
    return queries(dataset, count=1, k=DEFAULT_K, min_population=500,
                   seed=903)[0]


@pytest.mark.parametrize("init_mode", ["exact", "bulk"])
def test_init_mode_runtime(benchmark, dataset, query, init_mode):
    result = benchmark.pedantic(
        lambda: greedy_select(dataset, query, init_mode=init_mode),
        rounds=3, iterations=1,
    )
    assert len(result) > 0


def test_bulk_init_report(benchmark, dataset, query):
    def run():
        return {
            mode: greedy_select(dataset, query, init_mode=mode)
            for mode in ("exact", "bulk")
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        [mode, f"{res.stats['elapsed_s']:.4f}",
         res.stats["gain_evaluations"], f"{res.score:.4f}"]
        for mode, res in results.items()
    ]
    report_table(
        "ablation_bulk_init",
        ["init_mode", "runtime(s)", "gain evals", "score"],
        rows,
        title="Ablation — Algorithm 1 exact init vs vectorized bulk init",
    )
    # Bulk masses are computed with a different floating-point
    # summation order, so ties among duplicated objects may resolve
    # differently; the realized quality must be identical.
    assert results["exact"].score == pytest.approx(results["bulk"].score)
    assert (
        results["bulk"].stats["gain_evaluations"]
        <= results["exact"].stats["gain_evaluations"]
    )
