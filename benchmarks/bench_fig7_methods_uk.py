"""Figure 7: runtime and representative score of all methods on UK.

Paper shape to reproduce: Greedy attains the best score of all
methods; SASS is close behind on score while being the fastest of the
quality-aware methods; the diversity baselines (MaxMin/MaxSum) and
DisC trail clearly on score.
"""

import numpy as np
import pytest

from common import (
    DEFAULT_K,
    queries,
    report_table,
    uk,
)
from repro.experiments import compare_methods, selector_catalog

METHODS = ["Greedy", "SASS", "Random", "K-means", "MaxMin", "MaxSum", "DisC"]


@pytest.fixture(scope="module")
def dataset():
    return uk()


@pytest.fixture(scope="module")
def workload(dataset):
    return queries(dataset, k=DEFAULT_K)


@pytest.mark.parametrize("method", METHODS)
def test_fig7_method_runtime(benchmark, dataset, workload, method):
    """Per-method selection latency on the default UK workload."""
    selector = selector_catalog()[method]
    query = workload[0]

    def run():
        return selector(dataset, query, rng=np.random.default_rng(0))

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    assert len(result) > 0


def test_fig7_report(benchmark, dataset, workload):
    """The full Figure 7 table: mean runtime and score per method."""

    def run():
        return compare_methods(dataset, workload, METHODS)

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report_table(
        "fig7_methods_uk",
        ["method", "runtime(s)", "score", "runs"],
        [r.row() for r in rows],
        title="Figure 7 — methods on UK (runtime & representative score)",
    )
    by_name = {r.method: r for r in rows}
    # Paper shape: greedy's score leads everything.
    for other in METHODS[1:]:
        assert by_name["Greedy"].mean_score >= by_name[other].mean_score - 1e-9
    # SASS stays close to Greedy on score while being faster.  (The
    # paper's gap is a few percent; ours runs ~10-15% because the
    # absolute-epsilon sample misses some duplicate groups — see
    # EXPERIMENTS.md deviation 2.)
    assert by_name["SASS"].mean_score >= 0.8 * by_name["Greedy"].mean_score
    assert by_name["SASS"].mean_runtime_s <= by_name["Greedy"].mean_runtime_s
