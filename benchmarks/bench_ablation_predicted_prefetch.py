"""Ablation: full vs prediction-driven pre-fetching (extension).

The paper prefetches for all three possible operations; its cited
future work (Battle et al.) predicts the next viewport instead.  This
ablation measures the trade: a ``FrequencyPredictor(top=1)`` cuts the
off-path precompute cost to one kind, at the price of cache misses
(responses that fall back to exact initialization).
"""

import statistics

import numpy as np
import pytest

from common import queries, report_table, uk
from repro import FrequencyPredictor, MapSession
from repro.datasets import pan_offset_for_overlap

K = 50
STEPS = 8


@pytest.fixture(scope="module")
def dataset():
    return uk()


def drive_session(dataset, region, predictor):
    """A pan-heavy user journey; returns response/precompute stats."""
    session = MapSession(
        dataset, k=K, theta_fraction=0.003, prefetch=True,
        predictor=predictor,
    )
    session.start(region)
    rng = np.random.default_rng(42)
    response, precompute, hits = [], [], 0
    operations = ["pan", "pan", "zoom_in", "pan", "zoom_out",
                  "pan", "pan", "pan"][:STEPS]
    for op in operations:
        if op == "pan":
            dx, dy = pan_offset_for_overlap(session.region, 0.5, rng, "x")
            step = session.pan(dx, dy)
        elif op == "zoom_in":
            step = session.zoom_in(0.5)
        else:
            step = session.zoom_out(2.0)
        response.append(step.elapsed_s)
        precompute.append(sum(session.prefetch_elapsed.values()))
        hits += int(step.used_prefetch)
    return {
        "response_s": statistics.fmean(response),
        "precompute_s": statistics.fmean(precompute),
        "hit_rate": hits / len(operations),
    }


def test_predicted_prefetch_report(benchmark, dataset):
    region = queries(dataset, count=1, region_fraction=0.02, k=K,
                     min_population=800, seed=904)[0].region

    def run():
        return {
            "prefetch all": drive_session(dataset, region, None),
            "predicted top-1": drive_session(
                dataset, region, FrequencyPredictor(top=1)
            ),
            "predicted top-2": drive_session(
                dataset, region, FrequencyPredictor(top=2)
            ),
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        [name, f"{r['response_s']:.4f}", f"{r['precompute_s']:.4f}",
         f"{r['hit_rate']:.0%}"]
        for name, r in results.items()
    ]
    report_table(
        "ablation_predicted_prefetch",
        ["policy", "mean response(s)", "mean precompute(s)", "hit rate"],
        rows,
        title="Ablation — full vs prediction-driven pre-fetching "
              f"(pan-heavy {STEPS}-step journey)",
    )
    # Prediction cuts precompute cost; full prefetching never misses.
    assert (
        results["predicted top-1"]["precompute_s"]
        < results["prefetch all"]["precompute_s"]
    )
    assert results["prefetch all"]["hit_rate"] == 1.0
    assert results["predicted top-1"]["hit_rate"] >= 0.5  # pans repeat
