"""Figure 11: varying the query-region size.

Panels: (a) UK and (b) POI — Greedy vs Random runtime grows roughly
linearly with region size (more objects in the region); (c) US — SaSS
runtime stays low and grows slowly (the sample size is fixed; only
fetching and conflict handling grow).
"""

import statistics

import numpy as np
import pytest

from common import (
    DEFAULT_K,
    SASS_K,
    poi,
    queries,
    report_series,
    uk,
    us,
)
from repro import greedy_select, sass_select
from repro.baselines import random_select

# Paper Table 2: region sizes 2^-2 .. 2^2 times 1e-2 (by length).
REGION_FRACTIONS = [0.0025, 0.005, 0.01, 0.02, 0.04]


def sweep(dataset, selector, fractions, k, min_population=50):
    times = []
    for fraction in fractions:
        per_query = []
        for q_index, query in enumerate(
            queries(dataset, region_fraction=fraction, k=k,
                    min_population=min_population, seed=300)
        ):
            result = selector(dataset, query,
                              np.random.default_rng(q_index))
            per_query.append(result.stats["elapsed_s"])
        times.append(statistics.fmean(per_query))
    return times


def run_greedy(dataset, query, rng):
    return greedy_select(dataset, query)


def run_random(dataset, query, rng):
    return random_select(dataset, query, rng=rng)


def run_sass(dataset, query, rng):
    return sass_select(dataset, query, rng=rng)


@pytest.mark.parametrize("name,factory,k,selectors", [
    ("uk", uk, DEFAULT_K, (("Greedy", run_greedy), ("Random", run_random))),
    ("poi", poi, DEFAULT_K, (("Greedy", run_greedy), ("Random", run_random))),
    ("us", us, SASS_K, (("SASS", run_sass), ("Random", run_random))),
])
def test_fig11_region_sweep(benchmark, name, factory, k, selectors):
    dataset = factory()

    def run():
        return {
            label: sweep(dataset, fn, REGION_FRACTIONS, k)
            for label, fn in selectors
        }

    series = benchmark.pedantic(run, rounds=1, iterations=1)
    report_series(
        f"fig11_vary_region_{name}",
        "region_fraction", REGION_FRACTIONS, series,
        title=f"Figure 11 — varying query region size on {name.upper()} "
              "(runtime, s)",
    )
    # Paper shape: runtime increases with region size for the full
    # methods; check the trend across the extremes.
    for label, times in series.items():
        if label in ("Greedy",):
            assert times[-1] >= times[0]
