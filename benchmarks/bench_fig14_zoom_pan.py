"""Figure 14: varying zoom scale and panning overlap (UK).

(a) zoom-in scale 2^-3..2^-1: both variants get cheaper as the target
    shrinks; prefetch stays well below non-fetch throughout.
(b) zoom-out scale 2^1..2^3: cost grows with the target area;
    prefetch wins by about an order of magnitude.
(c) panning overlap buckets 0-100%: with little overlap the new strip
    is large (expensive); as overlap grows the work shrinks and the
    prefetch advantage narrows — the paper's observation (2).
"""

import statistics

import pytest

from common import queries, report_series, uk
from repro import MapSession
from repro.datasets import pan_offset_for_overlap

K = 50
REGION_FRACTION = 0.02
ZOOM_IN_SCALES = [0.125, 0.177, 0.25, 0.354, 0.5]
ZOOM_OUT_SCALES = [2.0, 2.83, 4.0, 5.66, 8.0]
OVERLAP_BUCKETS = [0.1, 0.3, 0.5, 0.7, 0.9]


@pytest.fixture(scope="module")
def dataset():
    return uk()


@pytest.fixture(scope="module")
def workload(dataset):
    return queries(dataset, count=2, region_fraction=REGION_FRACTION,
                   k=K, min_population=800, seed=500)


def session_for(dataset, prefetch, zoom_out_max=8.0):
    return MapSession(
        dataset, k=K, theta_fraction=0.003, prefetch=prefetch,
        zoom_out_max_scale=zoom_out_max,
    )


def run_sweep(dataset, workload, values, op_factory):
    out = {"Greedy (non-fetch)": [], "Pre-fetch": []}
    for value in values:
        for label, prefetch in (("Greedy (non-fetch)", False),
                                ("Pre-fetch", True)):
            times = []
            for query in workload:
                session = session_for(dataset, prefetch)
                session.start(query.region)
                step = op_factory(session, value)
                times.append(step.elapsed_s)
            out[label].append(statistics.fmean(times))
    return out


def test_fig14a_zoom_in_scale(benchmark, dataset, workload):
    def run():
        return run_sweep(
            dataset, workload, ZOOM_IN_SCALES,
            lambda session, scale: session.zoom_in(scale),
        )

    series = benchmark.pedantic(run, rounds=1, iterations=1)
    report_series(
        "fig14a_zoom_in_scale", "zoom_in_scale", ZOOM_IN_SCALES, series,
        title="Figure 14(a) — varying zoom-in scale on UK (runtime, s)",
    )
    for non, pre in zip(series["Greedy (non-fetch)"], series["Pre-fetch"]):
        assert pre <= non


def test_fig14b_zoom_out_scale(benchmark, dataset, workload):
    def run():
        return run_sweep(
            dataset, workload, ZOOM_OUT_SCALES,
            lambda session, scale: session.zoom_out(scale),
        )

    series = benchmark.pedantic(run, rounds=1, iterations=1)
    report_series(
        "fig14b_zoom_out_scale", "zoom_out_scale", ZOOM_OUT_SCALES, series,
        title="Figure 14(b) — varying zoom-out scale on UK (runtime, s)",
    )
    for non, pre in zip(series["Greedy (non-fetch)"], series["Pre-fetch"]):
        assert pre <= non * 1.1  # prefetch never meaningfully worse


def test_fig14c_pan_overlap(benchmark, dataset, workload):
    def run():
        import numpy as np

        def pan(session, overlap):
            dx, dy = pan_offset_for_overlap(
                session.region, overlap,
                rng=np.random.default_rng(1), axis="x",
            )
            return session.pan(dx, dy)

        return run_sweep(dataset, workload, OVERLAP_BUCKETS, pan)

    series = benchmark.pedantic(run, rounds=1, iterations=1)
    report_series(
        "fig14c_pan_overlap", "overlap", OVERLAP_BUCKETS, series,
        title="Figure 14(c) — varying panning overlap on UK (runtime, s)",
    )
    # Paper observation (1): at small overlap prefetch helps a lot ...
    assert series["Pre-fetch"][0] < series["Greedy (non-fetch)"][0]
    # ... and (2): the non-fetch cost shrinks as overlap grows (less
    # new area to select from).
    assert (
        series["Greedy (non-fetch)"][-1] <= series["Greedy (non-fetch)"][0]
    )
