"""Service load gate: latency SLOs, shed behavior, byte-identity.

Two phases over the asyncio selection service
(:class:`repro.service.SelectionService`), writing
``benchmarks/results/BENCH_service.json`` for the CI artifact:

* **nominal** — N concurrent clients, each owning a session and
  navigating a seeded random trace with interactive pacing (staggered
  arrival, think time between operations — the classic closed-loop-
  with-think-time model; 64 clients firing back-to-back would measure
  GIL saturation, not service quality).  Gates: success rate ≥ 99%,
  admitted-request p95 ≤ 250 ms, and every admitted selection
  byte-identical to a direct :class:`MapSession` replay of the same
  operations (the robustness machinery may reject, never corrupt).
* **overload** — the same client count hammering a deliberately
  starved controller (one slot, queue depth 2, 50 ms of injected
  handler latency).  Gates: sheds actually happen (shed rate ≥ 50%)
  and shed responses are fast — p95 ≤ 10 ms — because a rejection
  that queues first is just a slower failure.

``REPRO_BENCH_MODE`` selects the scale: ``smoke`` (default; PR CI) runs
12 clients x 4 steps, ``full`` (nightly) the ISSUE's 64 clients x 10
steps.  Sessions are configured *without* a degradation-ladder deadline
so selections are deterministic; the per-request deadline budget only
governs admission and queueing.
"""

from __future__ import annotations

import asyncio
import json
import os

import numpy as np
import pytest

from common import RESULTS_DIR, report_table
from repro import GeoDataset, MapSession
from repro.geo import BoundingBox
from repro.metrics.registry import percentile
from repro.robustness import SERVICE_HANDLE, FaultInjector
from repro.service import (
    AdmissionController,
    SelectionService,
    ServiceRequest,
)

pytestmark = pytest.mark.bench

MODE = os.environ.get("REPRO_BENCH_MODE", "smoke")
CLIENTS = 64 if MODE == "full" else 12
STEPS = 10 if MODE == "full" else 4

N_OBJECTS = 2_500
K = 8
REGION_SIDE = 0.10
#: Client pacing: arrival stagger plus per-operation think time keeps
#: offered load well under single-process selection capacity, so the
#: latency gate measures queueing and dispatch, not CPU saturation.
STAGGER_S = 1.0
THINK_S = (0.35, 0.65)

MAX_ADMITTED_P95_MS = 250.0
MAX_SHED_P95_MS = 10.0
MIN_SUCCESS_RATE = 0.99
MIN_OVERLOAD_SHED_RATE = 0.5
HARNESS_TIMEOUT_S = 300.0

OPS = ("zoom_in", "zoom_out", "pan")


def make_dataset() -> GeoDataset:
    gen = np.random.default_rng(2018)
    return GeoDataset.build(
        gen.random(N_OBJECTS), gen.random(N_OBJECTS),
        weights=gen.random(N_OBJECTS),
    )


def client_plan(client_id: int) -> tuple[list[float], list[tuple]]:
    """Seeded start region + depth-balanced operation list."""
    rng = np.random.default_rng(1000 + client_id)
    cx, cy = rng.uniform(0.2, 0.8, 2)
    half = REGION_SIDE / 2.0
    region = [cx - half, cy - half, cx + half, cy + half]
    ops: list[tuple] = []
    # Depth stays in [0, 1]: never zooming out past the start viewport
    # keeps candidate populations bounded, so per-op cost is stable and
    # the latency gate measures queueing, not one giant selection.
    depth = 0
    for _ in range(STEPS):
        choices = ["pan"]
        if depth == 0:
            choices.append("zoom_in")
        else:
            choices.append("zoom_out")
        kind = choices[int(rng.integers(len(choices)))]
        if kind == "zoom_in":
            ops.append(("zoom_in", 0.5))
            depth += 1
        elif kind == "zoom_out":
            ops.append(("zoom_out", 2.0))
            depth -= 1
        else:
            side = REGION_SIDE * (0.5 ** depth)
            dx = float(rng.uniform(-0.3, 0.3)) * side
            dy = float(rng.uniform(-0.3, 0.3)) * side
            ops.append(("pan", dx, dy))
    return region, ops


def to_request(sid: str, op: tuple) -> ServiceRequest:
    if op[0] == "zoom_in":
        return ServiceRequest(op="zoom_in", session_id=sid,
                              params={"scale": op[1]})
    if op[0] == "zoom_out":
        return ServiceRequest(op="zoom_out", session_id=sid,
                              params={"scale": op[1]})
    return ServiceRequest(op="pan", session_id=sid,
                          params={"dx": op[1], "dy": op[2]})


def replay_direct(dataset: GeoDataset, region: list[float],
                  ops: list[tuple]) -> list[list[int]]:
    """The admitted trace on a plain MapSession: expected selections."""
    session = MapSession(dataset, k=K)
    steps = [session.start(BoundingBox(*region))]
    for op in ops:
        if op[0] == "zoom_in":
            steps.append(session.zoom_in(scale=op[1]))
        elif op[0] == "zoom_out":
            steps.append(session.zoom_out(scale=op[1]))
        else:
            steps.append(session.pan(op[1], op[2]))
    session.close()
    return [[int(i) for i in s.visible] for s in steps]


def run_nominal(dataset: GeoDataset) -> dict:
    latencies_ms: list[float] = []
    outcomes = {"ok": 0, "failed": 0}
    mismatches: list[str] = []

    async def phase() -> None:
        service = SelectionService(
            {"bench": dataset},
            session_options={"k": K, "workers": 0},
            admission=AdmissionController(
                max_concurrency=4, max_queue_depth=2 * CLIENTS,
                queue_timeout_s=2.0,
            ),
            default_deadline_ms=2_000.0,
        )
        loop = asyncio.get_running_loop()

        async def timed(request: ServiceRequest):
            before = loop.time()
            response = await service.handle(request)
            latencies_ms.append((loop.time() - before) * 1000.0)
            return response

        async def client(client_id: int) -> None:
            region, ops = client_plan(client_id)
            pacing = np.random.default_rng(7000 + client_id)
            await asyncio.sleep(float(pacing.uniform(0.0, STAGGER_S)))
            started = await timed(
                ServiceRequest(op="start", params={"region": region})
            )
            if not started.ok:
                outcomes["failed"] += 1 + len(ops)
                return
            outcomes["ok"] += 1
            selections = [started.selection]
            admitted: list[tuple] = []
            for op in ops:
                await asyncio.sleep(float(pacing.uniform(*THINK_S)))
                response = await timed(to_request(started.session_id, op))
                if response.ok:
                    outcomes["ok"] += 1
                    admitted.append(op)
                    selections.append(response.selection)
                else:
                    outcomes["failed"] += 1
            expected = replay_direct(dataset, region, admitted)
            if selections != expected:
                mismatches.append(
                    f"client {client_id}: served selections diverged "
                    f"from the direct replay"
                )

        await asyncio.wait_for(
            asyncio.gather(*(client(i) for i in range(CLIENTS))),
            HARNESS_TIMEOUT_S,
        )
        await service.aclose()

    asyncio.run(phase())
    total = outcomes["ok"] + outcomes["failed"]
    return {
        "clients": CLIENTS,
        "requests": total,
        "success_rate": outcomes["ok"] / total,
        "p50_ms": percentile(latencies_ms, 50.0),
        "p95_ms": percentile(latencies_ms, 95.0),
        "max_ms": max(latencies_ms),
        "byte_identical": not mismatches,
        "mismatches": mismatches,
    }


def run_overload(dataset: GeoDataset) -> dict:
    shed_ms: list[float] = []
    outcomes = {"ok": 0, "shed": 0, "error": 0}
    shed_reasons: dict[str, int] = {}

    async def phase() -> None:
        injector = FaultInjector(seed=0)
        # Slow-but-successful handler: 50 ms of injected latency per
        # attempt models a degraded downstream dependency.
        injector.arm(SERVICE_HANDLE, latency_s=0.05, error=None)
        service = SelectionService(
            {"bench": dataset},
            session_options={"k": K, "workers": 0},
            admission=AdmissionController(
                max_concurrency=1, max_queue_depth=2,
                queue_timeout_s=0.002,
            ),
            fault_injector=injector,
            default_deadline_ms=5_000.0,
        )
        region, _ = client_plan(0)
        started = await service.handle(
            ServiceRequest(op="start", params={"region": region})
        )
        assert started.ok, started.error
        sid = started.session_id
        loop = asyncio.get_running_loop()

        async def client(client_id: int) -> None:
            for step in range(3):
                before = loop.time()
                response = await service.handle(
                    to_request(sid, ("pan", 0.001 * (client_id + 1), 0.0))
                )
                elapsed_ms = (loop.time() - before) * 1000.0
                if response.ok:
                    outcomes["ok"] += 1
                elif response.error_type in (
                    "OverloadShed", "SessionLimitExceeded"
                ):
                    outcomes["shed"] += 1
                    shed_ms.append(elapsed_ms)
                    reason = response.shed_reason or "unknown"
                    shed_reasons[reason] = shed_reasons.get(reason, 0) + 1
                else:
                    outcomes["error"] += 1

        await asyncio.wait_for(
            asyncio.gather(*(client(i) for i in range(CLIENTS))),
            HARNESS_TIMEOUT_S,
        )
        await service.aclose()

    asyncio.run(phase())
    total = sum(outcomes.values())
    return {
        "clients": CLIENTS,
        "requests": total,
        "shed_rate": outcomes["shed"] / total,
        "shed_reasons": shed_reasons,
        "ok": outcomes["ok"],
        "errors": outcomes["error"],
        "shed_p50_ms": percentile(shed_ms, 50.0) if shed_ms else 0.0,
        "shed_p95_ms": percentile(shed_ms, 95.0) if shed_ms else 0.0,
    }


def test_service_load_gate():
    dataset = make_dataset()
    nominal = run_nominal(dataset)
    overload = run_overload(dataset)

    payload = {
        "mode": MODE,
        "workload": {
            "objects": N_OBJECTS, "k": K, "clients": CLIENTS,
            "steps_per_client": STEPS, "region_side": REGION_SIDE,
        },
        "nominal": nominal,
        "overload": overload,
        "gates": {
            "max_admitted_p95_ms": MAX_ADMITTED_P95_MS,
            "max_shed_p95_ms": MAX_SHED_P95_MS,
            "min_success_rate": MIN_SUCCESS_RATE,
            "min_overload_shed_rate": MIN_OVERLOAD_SHED_RATE,
        },
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    out = RESULTS_DIR / "BENCH_service.json"
    out.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")

    report_table(
        "service_load",
        ["phase", "requests", "p50 (ms)", "p95 (ms)", "success/shed"],
        [
            [
                "nominal", f"{nominal['requests']}",
                f"{nominal['p50_ms']:.1f}", f"{nominal['p95_ms']:.1f}",
                f"{nominal['success_rate'] * 100:.1f}% ok",
            ],
            [
                "overload", f"{overload['requests']}",
                f"{overload['shed_p50_ms']:.1f}",
                f"{overload['shed_p95_ms']:.1f}",
                f"{overload['shed_rate'] * 100:.1f}% shed",
            ],
        ],
        title=(
            f"Service load ({MODE}): {CLIENTS} clients x {STEPS} steps, "
            f"{N_OBJECTS:,} objects, k={K} "
            f"(byte-identical={nominal['byte_identical']})"
        ),
    )

    assert nominal["byte_identical"], nominal["mismatches"][:3]
    assert nominal["success_rate"] >= MIN_SUCCESS_RATE, nominal
    assert nominal["p95_ms"] <= MAX_ADMITTED_P95_MS, nominal
    assert overload["shed_rate"] >= MIN_OVERLOAD_SHED_RATE, overload
    assert overload["shed_p95_ms"] <= MAX_SHED_P95_MS, overload
