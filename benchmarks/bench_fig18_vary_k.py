"""Figure 18 (Appendix E.1): varying the number of selected objects k.

Runtime of every method grows with k (more greedy iterations / more
random draws); Greedy vs Random on UK and POI, SaSS vs Random on US.
"""

import statistics

import numpy as np
import pytest

from common import (
    SASS_REGION_FRACTION,
    poi,
    queries,
    report_series,
    uk,
    us,
)
from repro import greedy_select, sass_select
from repro.baselines import random_select

KS = [60, 80, 100, 120, 140]


def sweep(dataset, ks, selectors, region_fraction, min_population):
    out = {label: [] for label, _fn in selectors}
    for k in ks:
        workload = queries(
            dataset, region_fraction=region_fraction, k=k,
            min_population=min_population, seed=600,
        )
        for label, fn in selectors:
            times = [
                fn(dataset, query, np.random.default_rng(i)).stats["elapsed_s"]
                for i, query in enumerate(workload)
            ]
            out[label].append(statistics.fmean(times))
    return out


def greedy_fn(dataset, query, rng):
    return greedy_select(dataset, query)


def random_fn(dataset, query, rng):
    return random_select(dataset, query, rng=rng)


def sass_fn(dataset, query, rng):
    return sass_select(dataset, query, rng=rng)


@pytest.mark.parametrize("name,factory,selectors,fraction,min_pop", [
    ("uk", uk, (("Greedy", greedy_fn), ("Random", random_fn)), 0.01, 300),
    ("poi", poi, (("Greedy", greedy_fn), ("Random", random_fn)), 0.02, 300),
    ("us", us, (("SASS", sass_fn), ("Random", random_fn)),
     SASS_REGION_FRACTION, 5000),
])
def test_fig18_vary_k(benchmark, name, factory, selectors, fraction, min_pop):
    dataset = factory()

    def run():
        return sweep(dataset, KS, selectors, fraction, min_pop)

    series = benchmark.pedantic(run, rounds=1, iterations=1)
    report_series(
        f"fig18_vary_k_{name}", "k", KS, series,
        title=f"Figure 18 — varying k on {name.upper()} (runtime, s)",
    )
    # Runtime increases with k for the primary method of each panel.
    primary = selectors[0][0]
    assert series[primary][-1] >= series[primary][0] * 0.8
