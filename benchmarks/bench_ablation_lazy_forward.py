"""Ablation: the lazy-forward strategy (Sec. 4.1).

Compares Algorithm 1's lazy heap against the naive greedy that
recomputes every candidate's marginal gain each iteration.  Results
are identical; the paper's claim is that the number of recomputations
``nc`` is far smaller than ``n`` — we report both the runtime and the
measured gain-evaluation counts.
"""

import numpy as np
import pytest

from common import DEFAULT_K, queries, report_table, uk
from repro import greedy_select


@pytest.fixture(scope="module")
def dataset():
    return uk()


@pytest.fixture(scope="module")
def query(dataset):
    return queries(dataset, count=1, k=DEFAULT_K, min_population=500,
                   seed=900)[0]


def test_ablation_lazy(benchmark, dataset, query):
    result = benchmark.pedantic(
        lambda: greedy_select(dataset, query, lazy=True),
        rounds=3, iterations=1,
    )
    assert len(result) > 0


def test_ablation_naive(benchmark, dataset, query):
    result = benchmark.pedantic(
        lambda: greedy_select(dataset, query, lazy=False),
        rounds=1, iterations=1,
    )
    assert len(result) > 0


def test_ablation_lazy_forward_report(benchmark, dataset, query):
    def run():
        lazy = greedy_select(dataset, query, lazy=True)
        naive = greedy_select(dataset, query, lazy=False)
        return lazy, naive

    lazy, naive = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        ["lazy-forward", f"{lazy.stats['elapsed_s']:.4f}",
         lazy.stats["gain_evaluations"], f"{lazy.score:.4f}"],
        ["naive", f"{naive.stats['elapsed_s']:.4f}",
         naive.stats["gain_evaluations"], f"{naive.score:.4f}"],
    ]
    report_table(
        "ablation_lazy_forward",
        ["variant", "runtime(s)", "gain evaluations (nc)", "score"],
        rows,
        title="Ablation — lazy-forward vs naive greedy "
              f"(population {lazy.stats['population']}, k={query.k})",
    )
    # Same quality (tie order may differ on duplicated corpora), far
    # fewer evaluations.
    assert lazy.score == pytest.approx(naive.score, rel=1e-6)
    assert lazy.stats["gain_evaluations"] < (
        0.5 * naive.stats["gain_evaluations"]
    )
