"""Ablation: loose vs tight panning prefetch bounds (Lemma 5.3).

The pan prefetcher can sum over the whole 3x3-viewport union (loose,
one bulk matvec) or restrict each object's sum to its 2x-viewport
square (tight, the lemma's refinement — one region query + row per
object).  Tight bounds cost more to precompute but dominate less
loosely, pruning more candidates at response time.
"""

import statistics

import pytest

from common import queries, report_table, uk
from repro import MapSession
from repro.datasets import pan_offset_for_overlap

K = 50
REGION_FRACTION = 0.02


@pytest.fixture(scope="module")
def dataset():
    return uk()


@pytest.fixture(scope="module")
def workload(dataset):
    return queries(dataset, count=2, region_fraction=REGION_FRACTION,
                   k=K, min_population=800, seed=907)


def run_pans(dataset, workload, tight):
    import numpy as np

    responses, precomputes, evals = [], [], []
    for query in workload:
        session = MapSession(
            dataset, k=K, theta_fraction=0.003, prefetch=True,
            tight_pan_bounds=tight,
        )
        session.start(query.region)
        precomputes.append(session.prefetch_elapsed["pan"])
        dx, dy = pan_offset_for_overlap(
            session.region, 0.5, np.random.default_rng(1), "x"
        )
        step = session.pan(dx, dy)
        assert step.used_prefetch
        responses.append(step.elapsed_s)
        evals.append(step.stats["gain_evaluations"])
    return {
        "response_s": statistics.fmean(responses),
        "precompute_s": statistics.fmean(precomputes),
        "gain_evals": statistics.fmean(evals),
    }


def test_tight_pan_report(benchmark, dataset, workload):
    def run():
        return {
            "loose (rA sum)": run_pans(dataset, workload, False),
            "tight (rA ∩ ro per object)": run_pans(dataset, workload, True),
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        [name, f"{r['precompute_s']:.4f}", f"{r['response_s']:.4f}",
         f"{r['gain_evals']:.0f}"]
        for name, r in results.items()
    ]
    report_table(
        "ablation_tight_pan",
        ["pan bounds", "precompute(s)", "response(s)", "gain evals"],
        rows,
        title="Ablation — Lemma 5.3 loose vs tight panning bounds",
    )
    loose = results["loose (rA sum)"]
    tight = results["tight (rA ∩ ro per object)"]
    # Tight bounds never force MORE response-time work ...
    assert tight["gain_evals"] <= loose["gain_evals"] * 1.05
    # ... and cost more to precompute (the lemma's trade).
    assert tight["precompute_s"] >= loose["precompute_s"]
