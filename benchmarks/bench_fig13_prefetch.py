"""Figure 13: pre-fetching vs non-fetching response time per operation.

The paper's headline ISOS result: seeding the greedy heap from
prefetched upper bounds (computed off the response path while the user
inspects the current view) cuts zoom-in response time by ~2 orders of
magnitude and zoom-out/pan by ~1 order.

Measured on UK with paper-default parameters; the reported time is the
selection response time only (prefetch precompute happens between
operations, exactly as in the paper's pipeline).
"""

import statistics

import pytest

from common import queries, report_table, uk
from repro import MapSession

OPERATIONS = ("zoom_in", "zoom_out", "pan")
K = 50
REGION_FRACTION = 0.02


def run_operation(session, op):
    region = session.region
    if op == "zoom_in":
        return session.zoom_in(0.5)
    if op == "zoom_out":
        return session.zoom_out(2.0)
    return session.pan(region.width * 0.5, 0.0)


def response_times(dataset, prefetch: bool) -> dict[str, float]:
    times = {op: [] for op in OPERATIONS}
    for q_index, query in enumerate(
        queries(dataset, count=2, region_fraction=REGION_FRACTION, k=K,
                min_population=800, seed=400)
    ):
        for op in OPERATIONS:
            session = MapSession(
                dataset, k=K, theta_fraction=0.003, prefetch=prefetch,
            )
            session.start(query.region)
            step = run_operation(session, op)
            times[op].append(step.elapsed_s)
            if prefetch:
                assert step.used_prefetch, op
    return {op: statistics.fmean(ts) for op, ts in times.items()}


@pytest.fixture(scope="module")
def dataset():
    return uk()


def test_fig13_prefetch_vs_nonfetch(benchmark, dataset):
    def run():
        return {
            "non_fetch": response_times(dataset, prefetch=False),
            "pre_fetch": response_times(dataset, prefetch=True),
        }

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    for op in OPERATIONS:
        non = result["non_fetch"][op]
        pre = result["pre_fetch"][op]
        rows.append([
            op, f"{non:.4f}", f"{pre:.4f}", f"{non / max(pre, 1e-9):.1f}x",
        ])
    report_table(
        "fig13_prefetch",
        ["operation", "non-fetch(s)", "pre-fetch(s)", "speedup"],
        rows,
        title="Figure 13 — pre-fetching vs non-fetching on UK "
              "(response time per operation)",
    )
    # Paper shape: prefetch wins on every operation.  (The paper's
    # speedups are 1-2 orders of magnitude; ours are smaller because
    # vectorized gain evaluations shift the init-vs-iterations balance
    # — see EXPERIMENTS.md.)
    for op in OPERATIONS:
        assert result["pre_fetch"][op] < result["non_fetch"][op], op
    zoom_in_speedup = (
        result["non_fetch"]["zoom_in"] / max(result["pre_fetch"]["zoom_in"], 1e-9)
    )
    assert zoom_in_speedup > 1.5
