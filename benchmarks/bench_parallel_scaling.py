"""Parallel/batched heap-initialization and delta-maintenance gates.

Two fixed-seed workloads through the execution engine:

**Heap-init scaling** — one init-dominated selection (large population,
small ``k``) at several configurations:

* **sequential** — ``workers=0, batch_size=1``: the scalar
  one-candidate-per-kernel-call engine (the pre-batching baseline);
* **batched** — ``workers=0``, default batch size: vectorized
  ``gains_kernel`` blocks, no pool;
* **workers=N** — a *warm* thread-backed
  :class:`~repro.parallel.WorkerPool` sharding the candidate blocks.
  The pool is built and warmed once per configuration and reused
  across repeats — exactly the session lifecycle after the raw-speed
  pass — so the numbers measure sweep cost, not executor spin-up.

**Delta navigation** — a :class:`~repro.core.session.MapSession` pan
trace with incremental ISOS delta maintenance on vs. a cold twin.
Overlapping pans must re-initialize the heap from the memoized masses
at least ``MIN_DELTA_SPEEDUP`` times faster than cold exact
initialization, with byte-identical selections on every step.

``REPRO_BENCH_MODE`` selects the scale: ``smoke`` (default; PR CI)
runs 15k/40k-object corpora; ``full`` (nightly) runs the 1M-object
corpus for both workloads and exports a Chrome-trace artifact of the
delta trace (``trace_parallel_full.json``).

Writes ``benchmarks/results/BENCH_parallel.json`` for the CI
bench-regression gate.  Asserts:

1. every configuration returns a selection bit-identical to the
   sequential engine (ids and score);
2. heap initialization at 4 warm workers is at least
   ``MIN_INIT_SPEEDUP`` times faster than the sequential baseline;
3. batching cuts kernel invocations by at least
   ``MIN_CALL_REDUCTION`` times;
4. on multi-core hosts only (``os.cpu_count() >= 2``): 4 workers beat
   1 worker by at least ``MIN_WORKER_SCALING`` on heap init — pure
   parallel speedup, meaningless on the 1-CPU containers this repo is
   developed in, so the gate records a skip there instead of failing;
5. delta-maintained pans re-initialize at least ``MIN_DELTA_SPEEDUP``
   times faster than their cold twins, byte-identically.
"""

from __future__ import annotations

import functools
import json
import os
import time

import pytest

from common import RESULTS_DIR, report_table, uk_plain, us_plain
from repro import RegionQuery, WorkerPool, greedy_select
from repro.core.session import MapSession
from repro.datasets import uk_tweets
from repro.geo import BoundingBox
from repro.metrics import MetricsRegistry
from repro.trace import Tracer
from repro.trace.export import write_chrome_trace

pytestmark = pytest.mark.bench

MODE = os.environ.get("REPRO_BENCH_MODE", "smoke")

MIN_INIT_SPEEDUP = 2.0
MIN_CALL_REDUCTION = 3.0
MIN_WORKER_SCALING = 1.3
MIN_DELTA_SPEEDUP = 5.0

N_OBJECTS = 15_000 if MODE == "smoke" else 1_000_000
K = 12
THETA_FRACTION = 0.003
REPEATS = 3

DELTA_N = 40_000 if MODE == "smoke" else 1_000_000
DELTA_K = 24
DELTA_PANS = 6

CONFIGS = (
    # (label, workers, batch_size)
    ("sequential", 0, 1),
    ("batched", 0, None),
    ("workers=1", 1, None),
    ("workers=2", 2, None),
    ("workers=4", 4, None),
)


def _run_config(dataset, query, workers: int, batch_size: int | None):
    """Best-of-REPEATS run of one engine configuration.

    One warm pool serves every repeat (the post-raw-speed-pass session
    lifecycle); ``parallel.pool_reuse`` confirms the reuse happened.
    """
    metrics = MetricsRegistry()
    pool = None
    if workers:
        pool = WorkerPool(
            workers,
            backend="thread",
            similarity=dataset.similarity,
            metrics=metrics,
        ).warm()
    best = None
    try:
        for _ in range(REPEATS):
            started = time.perf_counter()
            result = greedy_select(
                dataset, query, batch_size=batch_size, pool=pool
            )
            elapsed = time.perf_counter() - started
            if best is None or result.stats["init_seconds"] < best[1]:
                best = (result, result.stats["init_seconds"], elapsed)
    finally:
        if pool is not None:
            pool.close()
    result, init_seconds, elapsed = best
    return {
        "selected": result.selected.tolist(),
        "score": result.score,
        "init_seconds": init_seconds,
        "elapsed_s": elapsed,
        "kernel_calls": int(result.stats["kernel_calls"]),
        "kernel_rows": int(result.stats["kernel_rows"]),
        "gain_evaluations": int(result.stats["gain_evaluations"]),
        "pool_reuse": int(metrics.count("parallel.pool_reuse")),
        "pool_warms": int(metrics.count("parallel.pool_warms")),
    }


@functools.lru_cache(maxsize=None)
def _dataset():
    """Init-dominated corpus for the scaling workload.

    Smoke: UK-tweet analogue with texts (the sparse kernel whose
    per-invocation overhead batching amortizes).  Full: the 1M-object
    US analogue with a localized Gaussian kernel — text TF-IDF at 1M
    would measure corpus construction, not the engine.
    """
    if MODE == "smoke":
        return uk_tweets(n=N_OBJECTS)
    return us_plain(N_OBJECTS)


def _scaling_query(dataset) -> RegionQuery:
    if MODE == "smoke":
        # Whole frame: every object is candidate and population.
        return RegionQuery.with_theta_fraction(
            dataset.frame(), k=K, theta_fraction=THETA_FRACTION
        )
    # 1M objects: a paper-style viewport (~1% of the frame area) keeps
    # the init quadratic in the tens of thousands, not 10^12.
    from common import queries

    return queries(
        dataset, count=1, region_fraction=0.01, k=K,
        theta_fraction=THETA_FRACTION, min_population=5_000,
    )[0]


def test_parallel_scaling_gate():
    dataset = _dataset()
    query = _scaling_query(dataset)

    runs = {
        label: _run_config(dataset, query, workers, batch_size)
        for label, workers, batch_size in CONFIGS
    }

    sequential = runs["sequential"]
    for label, run in runs.items():
        assert run["selected"] == sequential["selected"], (
            f"{label} selection diverged from the sequential engine"
        )
        assert run["score"] == sequential["score"], (
            f"{label} score bits diverged from the sequential engine"
        )
        assert run["gain_evaluations"] == sequential["gain_evaluations"]

    init_speedup = runs["workers=4"]["init_seconds"] and (
        sequential["init_seconds"] / runs["workers=4"]["init_seconds"]
    )
    call_reduction = sequential["kernel_calls"] / runs["batched"]["kernel_calls"]

    # Pure parallel scaling (4 workers vs 1) only exists on multi-core
    # hosts; on a 1-CPU container threads time-share and the honest
    # answer is "not measurable", not "failed".
    cpus = os.cpu_count() or 1
    worker_scaling = None
    if cpus >= 2:
        worker_scaling = (
            runs["workers=1"]["init_seconds"]
            / runs["workers=4"]["init_seconds"]
        )

    payload = {
        "mode": MODE,
        "workload": {
            "dataset": "uk_tweets" if MODE == "smoke" else "us_plain",
            "objects": N_OBJECTS,
            "k": K,
            "theta_fraction": THETA_FRACTION,
            "repeats": REPEATS,
            "host_cpus": cpus,
        },
        "configs": {
            label: {k: v for k, v in run.items() if k != "selected"}
            for label, run in runs.items()
        },
        "init_speedup_4workers": init_speedup,
        "kernel_call_reduction": call_reduction,
        "worker_scaling_4v1": worker_scaling,
        "worker_scaling_skipped": cpus < 2,
        "min_init_speedup": MIN_INIT_SPEEDUP,
        "min_call_reduction": MIN_CALL_REDUCTION,
        "min_worker_scaling": MIN_WORKER_SCALING,
        "bit_identical": True,
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    out = RESULTS_DIR / "BENCH_parallel.json"
    existing = {}
    if out.exists():
        existing = json.loads(out.read_text(encoding="utf-8"))
    existing.update(payload)
    out.write_text(json.dumps(existing, indent=2) + "\n", encoding="utf-8")

    scaling_note = (
        f"{worker_scaling:.2f}x" if worker_scaling is not None
        else f"skipped ({cpus} cpu)"
    )
    report_table(
        "parallel_scaling",
        ["config", "init (ms)", "total (ms)", "kernel calls", "speedup"],
        [
            [
                label,
                f"{run['init_seconds'] * 1000:.1f}",
                f"{run['elapsed_s'] * 1000:.1f}",
                f"{run['kernel_calls']:,}",
                f"{sequential['init_seconds'] / run['init_seconds']:.2f}x",
            ]
            for label, run in runs.items()
        ],
        title=(
            f"Parallel scaling [{MODE}]: heap init over "
            f"{N_OBJECTS:,} objects, k={K} "
            f"(4-worker init speedup {init_speedup:.2f}x, "
            f"gate {MIN_INIT_SPEEDUP:.0f}x; kernel-call reduction "
            f"{call_reduction:.1f}x, gate {MIN_CALL_REDUCTION:.0f}x; "
            f"4v1 worker scaling {scaling_note})"
        ),
    )
    assert init_speedup >= MIN_INIT_SPEEDUP, (
        f"4-worker heap init only {init_speedup:.2f}x faster than the "
        f"sequential engine (gate {MIN_INIT_SPEEDUP:.0f}x); see {out}"
    )
    assert call_reduction >= MIN_CALL_REDUCTION, (
        f"batching cut kernel invocations only {call_reduction:.1f}x "
        f"(gate {MIN_CALL_REDUCTION:.0f}x); see {out}"
    )
    if worker_scaling is not None:
        assert worker_scaling >= MIN_WORKER_SCALING, (
            f"4 workers only {worker_scaling:.2f}x faster than 1 worker "
            f"on heap init (gate {MIN_WORKER_SCALING}x); see {out}"
        )


# ----------------------------------------------------------------------
# Delta-maintenance navigation workload
# ----------------------------------------------------------------------


@functools.lru_cache(maxsize=None)
def _delta_dataset():
    if MODE == "smoke":
        return uk_plain(DELTA_N)
    return us_plain(DELTA_N)


def _delta_viewport(dataset) -> BoundingBox:
    """A viewport holding a few thousand objects, pannable rightwards."""
    frame = dataset.frame()
    # ~1/8 of the frame's linear size, anchored left of center so the
    # pan trace stays inside the frame.
    width = frame.width / 8.0
    height = frame.height / 8.0
    x0 = frame.minx + frame.width * 0.15
    y0 = frame.miny + frame.height * 0.45
    return BoundingBox(x0, y0, x0 + width, y0 + height)


def _run_delta_trace(dataset, start, delta: bool, tracer=None):
    """One start + DELTA_PANS overlapping pans; per-step init times."""
    with MapSession(
        dataset,
        k=DELTA_K,
        theta_fraction=THETA_FRACTION,
        delta=delta,
        tracer=tracer,
    ) as session:
        steps = [session.start(start)]
        for _ in range(DELTA_PANS):
            steps.append(session.pan(start.width * 0.3, 0.0))
        serves = session.metrics.count("delta.serves")
    return {
        "selected": [s.result.selected.tolist() for s in steps],
        "scores": [s.result.score for s in steps],
        "pan_init_seconds": [
            s.result.stats.get("init_seconds", 0.0) for s in steps[1:]
        ],
        "delta_seeded_steps": sum(s.delta_seeded for s in steps),
        "delta_serves": int(serves),
    }


def test_delta_navigation_gate():
    dataset = _delta_dataset()
    start = _delta_viewport(dataset)

    best_cold = best_delta = None
    trace_path = None
    for repeat in range(REPEATS):
        # Chrome-trace artifact: record the last delta repeat so the
        # nightly run ships an inspectable span tree of the new
        # session.delta_update / parallel.gain_sweep spans.
        tracer = Tracer() if repeat == REPEATS - 1 else None
        cold = _run_delta_trace(dataset, start, delta=False)
        delta = _run_delta_trace(dataset, start, delta=True, tracer=tracer)
        if tracer is not None:
            RESULTS_DIR.mkdir(exist_ok=True)
            trace_path = RESULTS_DIR / "trace_parallel_full.json"
            write_chrome_trace(tracer, str(trace_path))
        if best_cold is None or (
            sum(cold["pan_init_seconds"])
            < sum(best_cold["pan_init_seconds"])
        ):
            best_cold = cold
        if best_delta is None or (
            sum(delta["pan_init_seconds"])
            < sum(best_delta["pan_init_seconds"])
        ):
            best_delta = delta

    # Byte-identity on every step of every repeat's final pair.
    assert best_delta["selected"] == best_cold["selected"], (
        "delta-maintained selections diverged from the cold twin"
    )
    assert best_delta["scores"] == best_cold["scores"]
    assert best_delta["delta_seeded_steps"] >= DELTA_PANS - 1, (
        "delta memo served fewer pans than expected: "
        f"{best_delta['delta_seeded_steps']}/{DELTA_PANS}"
    )

    cold_init = sum(best_cold["pan_init_seconds"])
    delta_init = sum(best_delta["pan_init_seconds"])
    delta_speedup = cold_init / delta_init if delta_init else float("inf")

    RESULTS_DIR.mkdir(exist_ok=True)
    out = RESULTS_DIR / "BENCH_parallel.json"
    existing = {}
    if out.exists():
        existing = json.loads(out.read_text(encoding="utf-8"))
    existing.update(
        {
            "mode": MODE,
            "delta_workload": {
                "dataset": "uk_plain" if MODE == "smoke" else "us_plain",
                "objects": DELTA_N,
                "k": DELTA_K,
                "pans": DELTA_PANS,
                "repeats": REPEATS,
            },
            "delta_cold_init_seconds": cold_init,
            "delta_init_seconds": delta_init,
            "delta_speedup": delta_speedup,
            "delta_bit_identical": True,
            "min_delta_speedup": MIN_DELTA_SPEEDUP,
        }
    )
    existing["chrome_trace"] = trace_path.name if trace_path else None
    out.write_text(json.dumps(existing, indent=2) + "\n", encoding="utf-8")

    report_table(
        "parallel_delta_steps",
        ["trace", "pan init total (ms)", "seeded steps", "speedup"],
        [
            ["cold", f"{cold_init * 1000:.1f}", "0", "1.00x"],
            [
                "delta",
                f"{delta_init * 1000:.1f}",
                str(best_delta["delta_seeded_steps"]),
                f"{delta_speedup:.2f}x",
            ],
        ],
        title=(
            f"Delta maintenance [{MODE}]: {DELTA_PANS} overlapping pans "
            f"over {DELTA_N:,} objects, k={DELTA_K} "
            f"(init speedup {delta_speedup:.2f}x, "
            f"gate {MIN_DELTA_SPEEDUP:.0f}x, byte-identical)"
        ),
    )
    assert delta_speedup >= MIN_DELTA_SPEEDUP, (
        f"delta-maintained pan init only {delta_speedup:.2f}x faster "
        f"than cold re-init (gate {MIN_DELTA_SPEEDUP:.0f}x); see {out}"
    )
