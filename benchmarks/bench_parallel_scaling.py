"""Parallel/batched heap-initialization scaling gate.

Runs one fixed-seed heap-init-dominated selection (large population,
small ``k``, TF-IDF cosine similarity — the sparse kernel whose
per-invocation overhead batching amortizes) through the execution
engine at several configurations:

* **sequential** — ``workers=0, batch_size=1``: the scalar
  one-candidate-per-kernel-call engine (the pre-batching baseline);
* **batched** — ``workers=0``, default batch size: Layer-1 batching
  only;
* **workers=N** — a thread-backed :class:`~repro.parallel.WorkerPool`
  sharding the candidate blocks (Layer 2).

Asserts three things and writes
``benchmarks/results/BENCH_parallel.json`` for the CI artifact:

1. every configuration returns a selection bit-identical to the
   sequential engine (ids and score);
2. heap initialization at 4 workers is at least ``MIN_INIT_SPEEDUP``
   times faster than the sequential baseline;
3. batching cuts kernel invocations by at least
   ``MIN_CALL_REDUCTION`` times.
"""

from __future__ import annotations

import functools
import json
import time

import pytest

from common import RESULTS_DIR, report_table
from repro import RegionQuery, WorkerPool, greedy_select
from repro.datasets import uk_tweets

pytestmark = pytest.mark.bench

MIN_INIT_SPEEDUP = 2.0
MIN_CALL_REDUCTION = 3.0
N_OBJECTS = 15_000
K = 12
THETA_FRACTION = 0.003
REPEATS = 3
CONFIGS = (
    # (label, workers, batch_size)
    ("sequential", 0, 1),
    ("batched", 0, None),
    ("workers=1", 1, None),
    ("workers=2", 2, None),
    ("workers=4", 4, None),
)


def _run_config(dataset, query, workers: int, batch_size: int | None):
    """Best-of-REPEATS run of one engine configuration."""
    best = None
    for _ in range(REPEATS):
        pool = None
        if workers:
            pool = WorkerPool(
                workers, backend="thread", similarity=dataset.similarity
            )
        try:
            started = time.perf_counter()
            result = greedy_select(
                dataset, query, batch_size=batch_size, pool=pool
            )
            elapsed = time.perf_counter() - started
        finally:
            if pool is not None:
                pool.close()
        if best is None or result.stats["init_seconds"] < best[1]:
            best = (result, result.stats["init_seconds"], elapsed)
    result, init_seconds, elapsed = best
    return {
        "selected": result.selected.tolist(),
        "score": result.score,
        "init_seconds": init_seconds,
        "elapsed_s": elapsed,
        "kernel_calls": int(result.stats["kernel_calls"]),
        "kernel_rows": int(result.stats["kernel_rows"]),
        "gain_evaluations": int(result.stats["gain_evaluations"]),
    }


@functools.lru_cache(maxsize=None)
def _dataset():
    """UK-tweet analogue with texts, sized so init dominates at k=12."""
    return uk_tweets(n=N_OBJECTS)


def test_parallel_scaling_gate():
    dataset = _dataset()
    query = RegionQuery.with_theta_fraction(
        dataset.frame(), k=K, theta_fraction=THETA_FRACTION
    )

    runs = {
        label: _run_config(dataset, query, workers, batch_size)
        for label, workers, batch_size in CONFIGS
    }

    sequential = runs["sequential"]
    for label, run in runs.items():
        assert run["selected"] == sequential["selected"], (
            f"{label} selection diverged from the sequential engine"
        )
        assert run["score"] == sequential["score"], (
            f"{label} score bits diverged from the sequential engine"
        )
        assert run["gain_evaluations"] == sequential["gain_evaluations"]

    init_speedup = runs["workers=4"]["init_seconds"] and (
        sequential["init_seconds"] / runs["workers=4"]["init_seconds"]
    )
    call_reduction = sequential["kernel_calls"] / runs["batched"]["kernel_calls"]

    payload = {
        "workload": {
            "dataset": "uk_tweets",
            "objects": N_OBJECTS,
            "k": K,
            "theta_fraction": THETA_FRACTION,
            "repeats": REPEATS,
        },
        "configs": {
            label: {k: v for k, v in run.items() if k != "selected"}
            for label, run in runs.items()
        },
        "init_speedup_4workers": init_speedup,
        "kernel_call_reduction": call_reduction,
        "min_init_speedup": MIN_INIT_SPEEDUP,
        "min_call_reduction": MIN_CALL_REDUCTION,
        "bit_identical": True,
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    out = RESULTS_DIR / "BENCH_parallel.json"
    out.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")

    report_table(
        "parallel_scaling",
        ["config", "init (ms)", "total (ms)", "kernel calls", "speedup"],
        [
            [
                label,
                f"{run['init_seconds'] * 1000:.1f}",
                f"{run['elapsed_s'] * 1000:.1f}",
                f"{run['kernel_calls']:,}",
                f"{sequential['init_seconds'] / run['init_seconds']:.2f}x",
            ]
            for label, run in runs.items()
        ],
        title=(
            "Parallel scaling: heap init over "
            f"{N_OBJECTS:,} candidates, k={K} "
            f"(4-worker init speedup {init_speedup:.2f}x, "
            f"gate {MIN_INIT_SPEEDUP:.0f}x; kernel-call reduction "
            f"{call_reduction:.1f}x, gate {MIN_CALL_REDUCTION:.0f}x)"
        ),
    )
    assert init_speedup >= MIN_INIT_SPEEDUP, (
        f"4-worker heap init only {init_speedup:.2f}x faster than the "
        f"sequential engine (gate {MIN_INIT_SPEEDUP:.0f}x); see {out}"
    )
    assert call_reduction >= MIN_CALL_REDUCTION, (
        f"batching cut kernel invocations only {call_reduction:.1f}x "
        f"(gate {MIN_CALL_REDUCTION:.0f}x); see {out}"
    )
