"""Figure 21 (Appendix F.2): ISOS response time vs k.

Runtime of each operation grows with k; prefetching keeps its 1–2
order advantage throughout.
"""

import pytest

from common import report_series, uk
from isos_common import default_workload, isos_sweep

KS = [20, 40, 60, 80]


@pytest.fixture(scope="module")
def dataset():
    return uk()


def test_fig21_isos_k_sweep(benchmark, dataset):
    def run():
        return isos_sweep(
            dataset,
            KS,
            workload_for=lambda k: default_workload(
                dataset, region_fraction=0.02, k=k, min_population=800,
            ),
            k_for=lambda k: k,
        )

    series = benchmark.pedantic(run, rounds=1, iterations=1)
    report_series(
        "fig21_isos_k_uk", "k", KS, series,
        title="Figure 21 — ISOS vs k on UK (runtime, s)",
    )
    for op in ("in", "out", "pan"):
        for non, pre in zip(series[f"Greedy-{op}"], series[f"Pre-{op}"]):
            assert pre <= non * 1.1, op
