"""Ablation: live SOS vs tile-precomputation ([14, 31] comparison).

The paper's core argument against precomputation-based selection
(Sec. 2): pre-defined cells and zoom levels cannot serve arbitrary
user regions well.  This ablation quantifies it on the UK analogue:

* quality — representative score of the tile answer vs the live
  greedy on random (tile-misaligned) viewports;
* latency — tile answers are near-instant, live greedy pays per query
  (the trade the paper's prefetching resolves without precomputation);
* filtering — tiles simply cannot answer a filtered query.
"""

import statistics

import pytest

from common import queries, report_table, uk
from repro import greedy_select
from repro.baselines import TilePyramid


@pytest.fixture(scope="module")
def dataset():
    return uk()


@pytest.fixture(scope="module")
def pyramid(dataset):
    return TilePyramid(dataset, max_level=6, per_tile_budget=50)


def test_tile_query_latency(benchmark, dataset, pyramid):
    query = queries(dataset, count=1, region_fraction=0.02, k=50,
                    min_population=500, seed=905)[0]
    result = benchmark.pedantic(
        lambda: pyramid.select(query), rounds=5, iterations=1
    )
    assert result.stats["tiles_touched"] >= 1


def test_tiles_vs_live_report(benchmark, dataset, pyramid):
    workload = queries(dataset, count=4, region_fraction=0.02, k=50,
                       min_population=500, seed=906)

    def run():
        rows = {"live": {"score": [], "time": []},
                "tiles": {"score": [], "time": []}}
        for query in workload:
            live = greedy_select(dataset, query)
            tiled = pyramid.select(query)
            rows["live"]["score"].append(live.score)
            rows["live"]["time"].append(live.stats["elapsed_s"])
            rows["tiles"]["score"].append(tiled.score)
            rows["tiles"]["time"].append(tiled.stats["elapsed_s"])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    live_score = statistics.fmean(rows["live"]["score"])
    tile_score = statistics.fmean(rows["tiles"]["score"])
    report_table(
        "ablation_tiles",
        ["approach", "mean score", "mean query(s)", "offline build(s)"],
        [
            ["live greedy (this paper)", f"{live_score:.4f}",
             f"{statistics.fmean(rows['live']['time']):.4f}", "0"],
            ["tile precomputation [14,31]", f"{tile_score:.4f}",
             f"{statistics.fmean(rows['tiles']['time']):.4f}",
             f"{pyramid.build_elapsed_s:.1f}"],
        ],
        title="Ablation — live SOS vs tile precomputation "
              f"({pyramid.tile_count} tiles, "
              f"{pyramid.stored_objects():,} stored picks)",
    )
    # The paper's claim: live selection on the actual region wins on
    # representativeness (tiles win on latency, at a huge offline cost).
    assert live_score > tile_score
