"""Shared infrastructure for the benchmark suite.

Datasets are built once per pytest session (module-level cache) and
sized relative to the paper (see DESIGN.md's substitution table):
the paper's 1M/100M/322k corpora become ~120k/600k/60k here, scalable
via the ``REPRO_SCALE`` environment variable.

Every benchmark prints the paper-style table/series it reproduces and
also appends it to ``benchmarks/results/<name>.txt`` so the output
survives pytest's capture (feed these files to EXPERIMENTS.md).
"""

from __future__ import annotations

import functools
from pathlib import Path

import numpy as np

from repro import GeoDataset, RegionQuery
from repro.datasets import random_region_queries, sg_pois, uk_tweets, us_tweets
from repro.experiments import format_series, format_table

RESULTS_DIR = Path(__file__).parent / "results"

# Paper Table 2 defaults (bold entries).
DEFAULT_K = 100
DEFAULT_THETA_FRACTION = 0.003
DEFAULT_REGION_FRACTION = 0.01
# SaSS experiments run on regions holding tens of thousands of objects
# so the sample stays a small fraction, as in the paper where the US
# query regions hold ~500k objects.  k is scaled down with the sample
# size to preserve the paper's k << m regime (their relative-error
# sample sizes were ~10x our absolute-error Hoeffding sizes); with k
# comparable to m, the sample score carries a k/m self-representation
# bias that the paper's setting never sees.
SASS_REGION_FRACTION = 0.16
SASS_K = 20
DEFAULT_EPSILON = 0.05
DEFAULT_DELTA = 0.1
QUERIES_PER_CONFIG = 3


@functools.lru_cache(maxsize=None)
def uk() -> GeoDataset:
    """UK-tweet analogue with texts (TF-IDF cosine similarity)."""
    return uk_tweets()


@functools.lru_cache(maxsize=None)
def poi() -> GeoDataset:
    """Singapore-POI analogue with texts."""
    return sg_pois()


@functools.lru_cache(maxsize=None)
def us() -> GeoDataset:
    """US-tweet analogue with texts (the large dataset)."""
    return us_tweets()


def _with_local_similarity(dataset: GeoDataset, sigma: float) -> GeoDataset:
    """Swap in a neighbourhood-scale Gaussian similarity.

    Text-free datasets default to Euclidean similarity, whose global
    support makes every pair weakly similar — unrealistic for geo
    content and pathological for the lazy greedy (every pick perturbs
    every gain).  A small-σ Gaussian kernel matches the text datasets'
    locality and keeps the scalability sweeps fast.
    """
    from repro.similarity import GaussianSpatialSimilarity

    return GeoDataset(
        xs=dataset.xs,
        ys=dataset.ys,
        weights=dataset.weights,
        similarity=GaussianSpatialSimilarity(
            dataset.xs, dataset.ys, sigma=sigma
        ),
        index=dataset.index,
        texts=dataset.texts,
        meta=dataset.meta,
    )


@functools.lru_cache(maxsize=None)
def uk_plain(n: int | None = None) -> GeoDataset:
    """UK analogue without texts (localized Gaussian similarity) —
    cheap to build at many sizes, used by the scalability sweeps."""
    return _with_local_similarity(uk_tweets(n=n, with_texts=False), 0.004)


@functools.lru_cache(maxsize=None)
def us_plain(n: int | None = None) -> GeoDataset:
    return _with_local_similarity(us_tweets(n=n, with_texts=False), 0.003)


def prefix_dataset(base: GeoDataset, m: int) -> GeoDataset:
    """The first ``m`` objects of ``base`` as a standalone dataset.

    Generated corpora shuffle object ids, so a prefix is a uniform
    subsample of the same spatial world — which is what scalability
    sweeps need: density that grows with size over identical geography.
    (Generating at different ``n`` instead would produce *different*
    cluster layouts, making runtimes non-monotonic in size.)
    """
    if m > len(base):
        raise ValueError(f"prefix {m} exceeds base size {len(base)}")
    return GeoDataset.build(
        base.xs[:m], base.ys[:m],
        weights=base.weights[:m],
        texts=base.texts[:m] if base.texts is not None else None,
    )


def queries(
    dataset: GeoDataset,
    count: int = QUERIES_PER_CONFIG,
    region_fraction: float = DEFAULT_REGION_FRACTION,
    k: int = DEFAULT_K,
    theta_fraction: float = DEFAULT_THETA_FRACTION,
    seed: int = 2018,
    min_population: int = 300,
) -> list[RegionQuery]:
    """Paper-style query workload (object-centered square regions)."""
    return random_region_queries(
        dataset, count,
        region_fraction=region_fraction,
        k=k,
        theta_fraction=theta_fraction,
        rng=np.random.default_rng(seed),
        min_population=min_population,
    )


def write_report(name: str, text: str) -> None:
    """Print a report block and persist it under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    print()
    print(text)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n", encoding="utf-8")


def report_table(name, headers, rows, title=""):
    write_report(name, format_table(headers, rows, title))


def report_series(name, x_label, xs, series, title="", fmt="{:.4f}"):
    write_report(name, format_series(x_label, xs, series, title, fmt))
