"""Deadline-check overhead on the undegraded hot path.

The anytime budget adds one strided clock check per heap pop and per
init step.  With a generous deadline that never fires, the selection
is bit-identical to the unbudgeted run — this benchmark verifies the
instrumentation cost stays under 5% of the fig-18-style greedy
runtime (the CI smoke job runs it on every push).
"""

import statistics
import time

import pytest

from common import queries, report_table, uk
from repro import Budget, greedy_select

pytestmark = pytest.mark.bench

ROUNDS = 9
WARMUP = 2
OVERHEAD_LIMIT = 0.05


def _best_time(fn, rounds=ROUNDS, warmup=WARMUP):
    """Minimum of repeated timings — the standard noise-robust
    estimator for a deterministic workload."""
    for _ in range(warmup):
        fn()
    samples = []
    for _ in range(rounds):
        started = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - started)
    return min(samples), statistics.median(samples)


def test_deadline_check_overhead(benchmark):
    dataset = uk()
    workload = queries(dataset, count=3, k=100, seed=600)
    generous = Budget.from_seconds(3600.0)

    def plain():
        for query in workload:
            greedy_select(dataset, query)

    def budgeted():
        for query in workload:
            greedy_select(dataset, query, budget=generous)

    # Selections must be identical: the budget never fires here.
    for query in workload:
        a = greedy_select(dataset, query)
        b = greedy_select(dataset, query, budget=generous)
        assert a.selected.tolist() == b.selected.tolist()
        assert not b.degraded

    plain_best, plain_median = _best_time(plain)
    budget_best, budget_median = _best_time(budgeted)
    overhead = budget_best / plain_best - 1.0

    benchmark.pedantic(budgeted, rounds=1, iterations=1)
    report_table(
        "robustness_overhead",
        ["variant", "best (s)", "median (s)"],
        [
            ["no budget", f"{plain_best:.4f}", f"{plain_median:.4f}"],
            ["generous budget", f"{budget_best:.4f}", f"{budget_median:.4f}"],
            ["overhead", f"{overhead:+.2%}", ""],
        ],
        title="Deadline-check overhead on the undegraded path",
    )
    assert overhead < OVERHEAD_LIMIT, (
        f"budget instrumentation costs {overhead:.2%} "
        f"(limit {OVERHEAD_LIMIT:.0%})"
    )
