"""Pytest configuration for the benchmark suite.

Makes the sibling ``common`` module importable when pytest is invoked
from the repository root (``pytest benchmarks/ --benchmark-only``).
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
