"""Pytest configuration for the benchmark suite.

Resolves every path from this file's location, not the process CWD,
so the suite runs identically from the repository root
(``pytest benchmarks/ --benchmark-only``), from inside ``benchmarks/``,
or from anywhere else:

* the sibling ``common`` module becomes importable, and
* ``src/`` is put on ``sys.path`` so ``repro`` imports without an
  externally exported ``PYTHONPATH``.
"""

import sys
from pathlib import Path

_HERE = Path(__file__).resolve().parent
_SRC = _HERE.parent / "src"

for path in (_HERE, _SRC):
    if path.is_dir() and str(path) not in sys.path:
        sys.path.insert(0, str(path))
