"""Figure 20 (Appendix F.1): ISOS response time vs query-region size.

Six curves (Greedy-in/out/pan and their prefetched counterparts); the
paper observes each method's cost stays fairly stable across region
sizes while prefetching wins by 1–3 orders of magnitude depending on
the operation.
"""

import pytest

from common import report_series, uk
from isos_common import default_workload, isos_sweep

REGION_FRACTIONS = [0.005, 0.01, 0.02, 0.04]


@pytest.fixture(scope="module")
def dataset():
    return uk()


def test_fig20_isos_region_sweep(benchmark, dataset):
    def run():
        return isos_sweep(
            dataset,
            REGION_FRACTIONS,
            workload_for=lambda fraction: default_workload(
                dataset, region_fraction=fraction,
                min_population=max(100, int(3000 * fraction)),
            ),
        )

    series = benchmark.pedantic(run, rounds=1, iterations=1)
    report_series(
        "fig20_isos_region_uk",
        "region_fraction", REGION_FRACTIONS, series,
        title="Figure 20 — ISOS vs query region size on UK (runtime, s)",
    )
    # Prefetch wins clearly once regions carry real population; on the
    # tiniest viewports the exact init is already trivial and the
    # bound lookups can cost as much as they save, so allow slack
    # there but require a win at the largest size.
    for op in ("in", "out", "pan"):
        assert series[f"Pre-{op}"][-1] <= series[f"Greedy-{op}"][-1], op
        for non, pre in zip(series[f"Greedy-{op}"], series[f"Pre-{op}"]):
            assert pre <= max(non * 1.1, non + 0.05), op
