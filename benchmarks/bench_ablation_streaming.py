"""Ablation: streaming maintenance vs periodic re-optimization.

Measures the extension of `repro.core.streaming`: ingest throughput,
how closely the swap-maintained selection tracks a from-scratch
greedy, and how rarely the on-screen selection changes (marker
stability).  There is no paper figure for this — the related work [39]
motivates the scenario — so the ablation establishes the trade-offs.
"""

import time

import numpy as np
import pytest

from common import report_table
from repro import RegionQuery, StreamingSelector, greedy_select
from repro.datasets import DatasetSpec, generate_clustered
from repro.geo import BoundingBox

VIEWPORT = BoundingBox(0.25, 0.25, 0.75, 0.75)
K = 12
THETA = 0.02
STREAM = 6000


@pytest.fixture(scope="module")
def corpus():
    return generate_clustered(
        DatasetSpec(name="stream-bench", n=STREAM, n_clusters=6,
                    duplicate_fraction=0.35, seed=11)
    )


def test_streaming_ingest_throughput(benchmark, corpus):
    def run():
        selector = StreamingSelector(
            corpus.similarity, VIEWPORT, k=K, theta=THETA
        )
        selector.extend(corpus.xs, corpus.ys, corpus.weights)
        return selector

    selector = benchmark.pedantic(run, rounds=1, iterations=1)
    assert selector.arrivals == STREAM


def test_streaming_quality_report(benchmark, corpus):
    def run():
        selector = StreamingSelector(
            corpus.similarity, VIEWPORT, k=K, theta=THETA
        )
        started = time.perf_counter()
        selector.extend(corpus.xs, corpus.ys, corpus.weights)
        ingest_s = time.perf_counter() - started
        maintained = selector.score()

        query = RegionQuery(region=VIEWPORT, k=K, theta=THETA)
        fresh = greedy_select(corpus, query)
        return {
            "ingest_s": ingest_s,
            "maintained_score": maintained,
            "fresh_score": fresh.score,
            "swaps": selector.swaps,
            "arrivals": selector.arrivals,
        }

    stats = benchmark.pedantic(run, rounds=1, iterations=1)
    ratio = stats["maintained_score"] / max(stats["fresh_score"], 1e-12)
    report_table(
        "ablation_streaming",
        ["metric", "value"],
        [
            ["arrivals", stats["arrivals"]],
            ["ingest throughput (obj/s)",
             f"{stats['arrivals'] / stats['ingest_s']:.0f}"],
            ["maintained score", f"{stats['maintained_score']:.4f}"],
            ["fresh greedy score", f"{stats['fresh_score']:.4f}"],
            ["quality kept", f"{ratio:.0%}"],
            ["selection changes (swaps)", stats["swaps"]],
            ["swap rate", f"{stats['swaps'] / stats['arrivals']:.2%}"],
        ],
        title="Ablation — streaming maintenance vs fresh greedy",
    )
    # The maintained selection keeps most of the fresh quality while
    # touching the visible markers on a tiny fraction of arrivals.
    assert ratio >= 0.75
    assert stats["swaps"] <= 0.05 * stats["arrivals"]
