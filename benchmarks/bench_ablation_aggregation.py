"""Ablation: Sim(o, S) aggregation — MAX (Eq. 1) vs SUM.

The paper's score uses max-aggregation (each object represented by its
most-similar selected object) and notes the machinery extends to sum.
This ablation compares runtime and the resulting selections' MAX-score
(the user-facing quality metric) when the greedy optimizes each
objective.  Expected: SUM runs faster (modular objective — zero
lazy-forward churn) but selects redundant objects, losing MAX-score.
"""

import pytest

from common import DEFAULT_K, queries, report_table, uk
from repro import Aggregation, greedy_select, representative_score


@pytest.fixture(scope="module")
def dataset():
    return uk()


@pytest.fixture(scope="module")
def query(dataset):
    return queries(dataset, count=1, k=DEFAULT_K, min_population=500,
                   seed=902)[0]


@pytest.mark.parametrize("aggregation", [Aggregation.MAX, Aggregation.SUM])
def test_aggregation_runtime(benchmark, dataset, query, aggregation):
    result = benchmark.pedantic(
        lambda: greedy_select(dataset, query, aggregation=aggregation),
        rounds=3, iterations=1,
    )
    assert len(result) > 0


def test_aggregation_report(benchmark, dataset, query):
    def run():
        out = {}
        for agg in (Aggregation.MAX, Aggregation.SUM):
            result = greedy_select(dataset, query, aggregation=agg)
            max_quality = representative_score(
                dataset, result.region_ids, result.selected, Aggregation.MAX
            )
            out[agg.value] = (result, max_quality)
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        [
            agg,
            f"{res.stats['elapsed_s']:.4f}",
            res.stats["gain_evaluations"],
            f"{quality:.4f}",
        ]
        for agg, (res, quality) in results.items()
    ]
    report_table(
        "ablation_aggregation",
        ["aggregation", "runtime(s)", "gain evals", "MAX-score of selection"],
        rows,
        title="Ablation — greedy objective: MAX (Eq. 1) vs SUM",
    )
    # MAX-optimizing greedy must win on the MAX quality metric.
    assert results["max"][1] >= results["sum"][1] - 1e-9
    # SUM's objective is modular: no marginal-gain re-evaluations.
    assert (
        results["sum"][0].stats["gain_evaluations"]
        <= results["max"][0].stats["gain_evaluations"]
    )
