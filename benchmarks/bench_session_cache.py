"""Cold-vs-warm session-cache regression gate.

Replays a fixed-seed overlapping-viewport workload (zoom-in heavy —
the Lemma 5.1 regime the warm start targets) through two sessions over
the same corpus:

* **cold** — a count-only :class:`SimilarityCache` (``max_entries=0``)
  that never stores a value, so every step pays full evaluation cost
  while still reporting exact pair counts;
* **warm** — the real cache plus the selection warm start.

Asserts the two produce bit-identical selections on every step and
that the warm session saves at least ``MIN_SAVINGS`` of the cold
session's similarity evaluations across navigation steps.  Writes
``benchmarks/results/BENCH_session_cache.json`` (per-variant p50/p95
step latency, sim-eval counts, cache hit rate) for the CI artifact.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from common import RESULTS_DIR, report_table, uk
from repro import MapSession, SimilarityCache
from repro.metrics import percentile

pytestmark = pytest.mark.bench

MIN_SAVINGS = 0.30
K = 100
SEED = 2018
TRACES = 2
ZOOM_SCALES = (0.85, 0.8, 0.85, 0.75)
REGION_FRACTION = 0.02


def _start_regions(dataset, count: int):
    """Fixed-seed object-centered start viewports with real population."""
    from repro.datasets import random_region_queries

    qs = random_region_queries(
        dataset, count,
        region_fraction=REGION_FRACTION,
        k=K,
        rng=np.random.default_rng(SEED),
        min_population=1000,
    )
    return [q.region for q in qs]


def _replay(dataset, regions, *, similarity_cache, warm_start):
    """Run the workload; returns (navigation steps, cache counters)."""
    nav_steps = []
    cache = similarity_cache
    for region in regions:
        session = MapSession(
            dataset, k=K,
            similarity_cache=cache,
            warm_start=warm_start,
        )
        session.start(region)
        for scale in ZOOM_SCALES:
            nav_steps.append(session.zoom_in(scale))
        cache = session.similarity_cache  # share across traces
    return nav_steps, cache.counters()


def _stats(steps, counters):
    latencies = [s.elapsed_s for s in steps]
    pairs = sum(s.stats["sim_pairs_evaluated"] for s in steps)
    served = counters["pairs_evaluated"] + counters["pairs_saved"]
    return {
        "steps": len(steps),
        "p50_latency_ms": percentile(latencies, 50.0) * 1000.0,
        "p95_latency_ms": percentile(latencies, 95.0) * 1000.0,
        "sim_pairs_evaluated": int(pairs),
        "cache_hits": counters["hits"],
        "cache_misses": counters["misses"],
        "cache_hit_rate": (
            counters["pairs_saved"] / served if served else 0.0
        ),
        "warm_started_steps": int(sum(s.warm_started for s in steps)),
    }


def test_session_cache_regression():
    dataset = uk()
    regions = _start_regions(dataset, TRACES)

    cold_steps, cold_counters = _replay(
        dataset, regions,
        similarity_cache=SimilarityCache(dataset.similarity, max_entries=0),
        warm_start=False,
    )
    warm_steps, warm_counters = _replay(
        dataset, regions, similarity_cache=True, warm_start=True
    )

    # Warm-start selections must be bit-identical to cold ones.
    assert len(cold_steps) == len(warm_steps)
    for c, w in zip(cold_steps, warm_steps):
        assert c.result.selected.tolist() == w.result.selected.tolist(), (
            f"warm {w.operation} selection diverged from cold"
        )
        assert c.result.score == w.result.score

    cold = _stats(cold_steps, cold_counters)
    warm = _stats(warm_steps, warm_counters)
    savings = 1.0 - warm["sim_pairs_evaluated"] / cold["sim_pairs_evaluated"]

    payload = {
        "workload": {
            "dataset": "uk",
            "objects": len(dataset),
            "traces": TRACES,
            "zoom_scales": list(ZOOM_SCALES),
            "region_fraction": REGION_FRACTION,
            "k": K,
            "seed": SEED,
        },
        "cold": cold,
        "warm": warm,
        "sim_eval_savings": savings,
        "min_savings": MIN_SAVINGS,
        "bit_identical": True,
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    out = RESULTS_DIR / "BENCH_session_cache.json"
    out.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")

    report_table(
        "session_cache",
        ["variant", "p50 (ms)", "p95 (ms)", "sim evals", "hit rate"],
        [
            [
                name,
                f"{s['p50_latency_ms']:.1f}",
                f"{s['p95_latency_ms']:.1f}",
                f"{s['sim_pairs_evaluated']:,}",
                f"{s['cache_hit_rate']:.1%}",
            ]
            for name, s in (("cold", cold), ("warm", warm))
        ],
        title=(
            "Session cache: cold vs warm navigation steps "
            f"(savings {savings:+.1%}, gate {MIN_SAVINGS:.0%})"
        ),
    )
    assert savings >= MIN_SAVINGS, (
        f"warm start saved only {savings:.1%} of similarity evaluations "
        f"(gate {MIN_SAVINGS:.0%}); see {out}"
    )
