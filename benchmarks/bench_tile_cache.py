"""Tile-cache regression gate: tiled warm steps vs cold direct steps.

Replays a fixed-seed navigation workload over large-population
viewports through two sessions on the same corpus:

* **cold** — a plain :class:`MapSession` (no prefetch, no caches):
  every step pays the full exact heap initialization;
* **tiled** — the same session wired to a precomputed
  :class:`~repro.tiles.TileStore`: steps seed the greedy heap from
  composed tile bounds and repair the rest exactly.

Asserts the two produce bit-identical selections on every step and —
in ``full`` mode, where the corpus has 100k+ objects and viewports
hold ~20k — that the median *served* tiled step is at least
``MIN_SPEEDUP``x faster than the cold one.  Full mode runs the cache
at its production defaults: the ``min_candidates`` heuristic sends
small steps (pan strips expose only a sliver of candidates) straight
to the cold path — both sessions then do identical work and there is
nothing for a cache to win — so the wall-clock gate covers exactly
the init-dominated steps the tile cache exists for, and the bench
asserts the serve/skip decision matches the heuristic.  Writes
``benchmarks/results/BENCH_tiles.json`` for the CI artifact and the
bench-regression comparison (``collect_results.py --compare``).

``REPRO_BENCH_MODE`` selects the scale: ``smoke`` (default; PR CI)
uses a 30k corpus with ``min_candidates=0`` (every step forced
through the tile path, including tiny pan strips — maximum identity
coverage) and gates only identity + serving: small viewports sit near
the tiled/cold breakeven, so a smoke wall-clock gate would be noise.
``full`` (nightly) runs the 120k corpus where the ≥3x regime holds.
"""

from __future__ import annotations

import json
import os

import numpy as np
import pytest

from common import RESULTS_DIR, report_table, uk
from repro import MapSession
from repro.datasets import random_region_queries, uk_tweets
from repro.metrics import percentile
from repro.tiles import TileScheme, TileSelectionCache, build_tile_store

pytestmark = pytest.mark.bench

MODE = os.environ.get("REPRO_BENCH_MODE", "smoke")

K = 100
SEED = 2018
#: Median tiled-vs-cold speedup gate over *served* steps (full mode
#: only: the tiled win is an init-dominated-regime property,
#: meaningless at smoke scale).
MIN_SPEEDUP = 3.0
#: Full mode must actually serve at least this many steps for the
#: median to mean anything.
MIN_SERVED = 4

if MODE == "full":
    TRACES = 2
    REGION_FRACTION = 0.2
    MIN_POPULATION = 20_000
    ZOOMS = [2]  # the serving level for every viewport of this trace
else:
    TRACES = 2
    REGION_FRACTION = 0.3
    MIN_POPULATION = 3_000
    ZOOMS = [1, 2]


def _dataset():
    return uk() if MODE == "full" else uk_tweets(30_000)


def _start_regions(dataset, count: int):
    qs = random_region_queries(
        dataset, count,
        region_fraction=REGION_FRACTION,
        k=K,
        rng=np.random.default_rng(SEED),
        min_population=MIN_POPULATION,
    )
    return [q.region for q in qs]


def _replay(dataset, regions, tiles):
    """Run the fixed trace; returns the list of navigation steps."""
    steps = []
    for region in regions:
        session = MapSession(dataset, k=K, tiles=tiles)
        steps.append(session.start(region))
        steps.append(session.zoom_in(0.8))
        steps.append(session.pan(dx=0.5 * session.region.width))
        steps.append(session.zoom_in(0.85))
    return steps


def _latency_stats(steps):
    latencies = [s.elapsed_s for s in steps]
    return {
        "steps": len(steps),
        "p50_ms": percentile(latencies, 50.0) * 1000.0,
        "p95_ms": percentile(latencies, 95.0) * 1000.0,
        "total_s": float(sum(latencies)),
        "gain_evaluations": int(
            sum(s.stats.get("gain_evaluations", 0) for s in steps)
        ),
    }


def test_tile_cache_regression():
    dataset = _dataset()
    regions = _start_regions(dataset, TRACES)

    import time as _time

    scheme = TileScheme(frame=dataset.frame(), max_zoom=max(ZOOMS))
    # repro-lint: disable=RL002 -- reporting-only duration measurement (bench build timing); never influences which objects are selected
    build_started = _time.perf_counter()
    store = build_tile_store(dataset, scheme=scheme, zooms=ZOOMS)
    # repro-lint: disable=RL002 -- reporting-only duration measurement (bench build timing); never influences which objects are selected
    build_seconds = _time.perf_counter() - build_started
    if MODE == "full":
        # Production defaults: the min_candidates heuristic routes
        # small steps (pan strips) cold, exactly as a deployment would.
        tiles = TileSelectionCache(store)
    else:
        # Force every step through the tile path, however tiny — smoke
        # exists for identity coverage, not wall-clock.
        tiles = TileSelectionCache(store, min_candidates=0)

    cold_steps = _replay(dataset, regions, tiles=None)
    tiled_steps = _replay(dataset, regions, tiles=tiles)

    assert len(cold_steps) == len(tiled_steps)
    rows = []
    for c, t in zip(cold_steps, tiled_steps):
        assert c.result.selected.tolist() == t.result.selected.tolist(), (
            f"tiled {t.operation} selection diverged from cold"
        )
        assert c.result.score == t.result.score
        # The serve/skip decision must match the heuristic exactly:
        # big steps seed from tiles, small ones run cold on purpose.
        should_serve = len(t.candidates) >= tiles.min_candidates
        assert t.tile_seeded == should_serve, (
            f"{t.operation} step with {len(t.candidates)} candidates: "
            f"tile_seeded={t.tile_seeded}, expected {should_serve}"
        )
        rows.append(
            {
                "operation": c.operation,
                "population": int(len(c.result.region_ids)),
                "candidates": int(len(c.candidates)),
                "cold_ms": c.elapsed_s * 1000.0,
                "tiled_ms": t.elapsed_s * 1000.0,
                "speedup": c.elapsed_s / t.elapsed_s,
                "tile_seeded": bool(t.tile_seeded),
            }
        )

    served = [r for r in rows if r["tile_seeded"]]
    median_speedup = percentile(
        sorted(r["speedup"] for r in served), 50.0
    )
    gate = MIN_SPEEDUP if MODE == "full" else None
    if MODE == "full":
        assert len(served) >= MIN_SERVED, (
            f"only {len(served)} served steps; need {MIN_SERVED} for a "
            "meaningful gated median"
        )

    payload = {
        "mode": MODE,
        "workload": {
            "dataset": "uk" if MODE == "full" else "uk_tweets(30k)",
            "objects": len(dataset),
            "traces": TRACES,
            "region_fraction": REGION_FRACTION,
            "min_population": MIN_POPULATION,
            "k": K,
            "seed": SEED,
        },
        "build": {
            "seconds": build_seconds,
            "tiles": len(store),
            "bytes": store.total_bytes,
            "zooms": list(ZOOMS),
        },
        "steps": rows,
        "cold": _latency_stats(cold_steps),
        "tiled": _latency_stats(tiled_steps),
        "served_steps": len(served),
        "speedup_median": median_speedup,
        "min_speedup": gate,
        "bit_identical": True,
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    out = RESULTS_DIR / "BENCH_tiles.json"
    out.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")

    report_table(
        "tile_cache",
        ["step", "population", "candidates", "cold (ms)", "tiled (ms)", "x"],
        [
            [
                r["operation"],
                f"{r['population']:,}",
                f"{r['candidates']:,}",
                f"{r['cold_ms']:.0f}",
                f"{r['tiled_ms']:.0f}",
                f"{r['speedup']:.2f}" + ("" if r["tile_seeded"] else " c"),
            ]
            for r in rows
        ],
        title=(
            f"Tile cache ({MODE}): cold vs tiled navigation steps "
            f"('c' = step ran cold by heuristic, ungated; "
            f"median served speedup {median_speedup:.2f}x"
            + (f", gate {gate:.1f}x" if gate else ", no wall-clock gate")
            + f"; build {build_seconds:.1f}s, "
            f"{store.total_bytes / 1e6:.1f} MB)"
        ),
    )
    if gate is not None:
        assert median_speedup >= gate, (
            f"median served tiled speedup {median_speedup:.2f}x below "
            f"the {gate:.1f}x gate; see {out}"
        )
