"""Figure 19 (Appendix E.2): varying the visibility threshold θ.

The paper's observation: runtime "stays stable regardless of the
choice of distance threshold" — θ only affects how many neighbours are
pruned per pick, which is a small cost either way.
"""

import statistics

import numpy as np
import pytest

from common import (
    DEFAULT_K,
    SASS_K,
    SASS_REGION_FRACTION,
    poi,
    queries,
    report_series,
    uk,
    us,
)
from repro import greedy_select, sass_select
from repro.baselines import random_select

THETA_FRACTIONS = [0.001, 0.002, 0.003, 0.004, 0.005]


def sweep(dataset, selectors, k, region_fraction, min_population):
    out = {label: [] for label, _fn in selectors}
    for theta_fraction in THETA_FRACTIONS:
        workload = queries(
            dataset, region_fraction=region_fraction, k=k,
            theta_fraction=theta_fraction,
            min_population=min_population, seed=700,
        )
        for label, fn in selectors:
            times = [
                fn(dataset, query, np.random.default_rng(i)).stats["elapsed_s"]
                for i, query in enumerate(workload)
            ]
            out[label].append(statistics.fmean(times))
    return out


def greedy_fn(dataset, query, rng):
    return greedy_select(dataset, query)


def random_fn(dataset, query, rng):
    return random_select(dataset, query, rng=rng)


def sass_fn(dataset, query, rng):
    return sass_select(dataset, query, rng=rng)


@pytest.mark.parametrize("name,factory,selectors,k,fraction,min_pop", [
    ("uk", uk, (("Greedy", greedy_fn), ("Random", random_fn)),
     DEFAULT_K, 0.01, 300),
    ("poi", poi, (("Greedy", greedy_fn), ("Random", random_fn)),
     DEFAULT_K, 0.02, 300),
    ("us", us, (("SASS", sass_fn), ("Random", random_fn)),
     SASS_K, SASS_REGION_FRACTION, 5000),
])
def test_fig19_vary_theta(benchmark, name, factory, selectors, k,
                          fraction, min_pop):
    dataset = factory()

    def run():
        return sweep(dataset, selectors, k, fraction, min_pop)

    series = benchmark.pedantic(run, rounds=1, iterations=1)
    report_series(
        f"fig19_vary_theta_{name}", "theta_fraction", THETA_FRACTIONS, series,
        title=f"Figure 19 — varying θ on {name.upper()} (runtime, s)",
    )
    # Stability: runtime at the largest θ within ~3x of the smallest
    # (the paper's curves are flat; ours may wobble on small samples).
    primary = selectors[0][0]
    low, high = min(series[primary]), max(series[primary])
    assert high <= 3.0 * max(low, 1e-9)
