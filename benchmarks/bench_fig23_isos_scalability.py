"""Figure 23 (Appendix F.4): ISOS scalability with dataset size.

Response times per operation as the UK corpus grows 1x..2x, with and
without prefetching, on the full text datasets.  The paper's shape:
every operation's cost grows with density; prefetching keeps its edge
throughout.
"""

from common import prefix_dataset, report_series
from isos_common import CURVES, default_workload, operation_time
from repro.datasets import uk_tweets

MULTIPLIERS = [1.0, 1.5, 2.0]
UK_BASE = 120_000


def test_fig23_isos_scalability(benchmark):
    def run():
        out = {label: [] for label, _op, _pf in CURVES}
        world = uk_tweets(n=int(UK_BASE * MULTIPLIERS[-1]))
        for mult in MULTIPLIERS:
            dataset = prefix_dataset(world, int(UK_BASE * mult))
            workload = default_workload(
                dataset, region_fraction=0.02, min_population=500,
            )
            for label, op, prefetch in CURVES:
                out[label].append(
                    operation_time(dataset, workload, op, prefetch, k=50)
                )
        return out

    series = benchmark.pedantic(run, rounds=1, iterations=1)
    report_series(
        "fig23_isos_scalability_uk",
        "size_multiplier", MULTIPLIERS, series,
        title="Figure 23 — ISOS scalability on UK (runtime, s)",
    )
    for op in ("in", "out", "pan"):
        for non, pre in zip(series[f"Greedy-{op}"], series[f"Pre-{op}"]):
            assert pre <= non * 1.1, op
